package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/mathx"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

// Fig2Result is one anchor's calibration, with every model's fit: the
// CBG baseline/bestline/slowline and Spotter's µ/σ curves evaluated at
// reference delays, plus the Quasi-Octant hull sizes.
type Fig2Result struct {
	AnchorID        netsim.HostID
	Points          int
	BestlineSpeed   float64 // km/ms (paper's example: 93.5)
	BestlineIcpt    float64 // ms
	BaselineSpeed   float64 // always 200
	SlowlineSpeed   float64 // always 84.5
	OctMaxKnots     int
	OctMinKnots     int
	SpotterMu100    float64 // µ at 100 ms one-way
	SpotterSigma100 float64
}

// Fig2Calibration reproduces Figure 2 for the first anchor.
func (l *Lab) Fig2Calibration() (*Fig2Result, error) {
	anchor := l.Cons.Anchors()[0]
	pts := l.Cons.Calibration(anchor.Host.ID)
	line := l.CBG.Calibration().Line(anchor.Host.ID)
	model := l.Spotter.Model()

	oneWay := make([]mathx.XY, len(pts))
	for i, p := range pts {
		oneWay[i] = mathx.XY{X: p.X, Y: geo.OneWayMs(p.Y)}
	}
	lower := mathx.LowerHull(oneWay)
	upper := mathx.UpperHull(oneWay)

	return &Fig2Result{
		AnchorID:        anchor.Host.ID,
		Points:          len(pts),
		BestlineSpeed:   1 / line.Slope,
		BestlineIcpt:    line.Intercept,
		BaselineSpeed:   geo.BaselineSpeedKmPerMs,
		SlowlineSpeed:   geo.SlowlineSpeedKmPerMs,
		OctMaxKnots:     len(lower),
		OctMinKnots:     len(upper),
		SpotterMu100:    model.MuKm(100),
		SpotterSigma100: model.SigmaKm(100),
	}, nil
}

// Render formats the result as the figure's caption row.
func (r *Fig2Result) Render() string {
	return fmt.Sprintf(
		"Fig 2 | anchor %s: %d calibration points; bestline %.1f km/ms (+%.1f ms), baseline %.0f, slowline %.1f; octant hull %d/%d knots; spotter µ(100ms)=%.0f km σ=%.0f km",
		r.AnchorID, r.Points, r.BestlineSpeed, r.BestlineIcpt, r.BaselineSpeed,
		r.SlowlineSpeed, r.OctMaxKnots, r.OctMinKnots, r.SpotterMu100, r.SpotterSigma100)
}

// Fig4Result is the tool-validation regression of §4.3.
type Fig4Result struct {
	OneTripSlope float64 // ms per ms of base RTT
	TwoTripSlope float64
	SlopeRatio   float64 // paper: 1.96 on Linux
	R2           float64 // paper: 0.9942
	CLISlope     float64 // CLI tool, always one trip
	// SlopeCI95 is the half-width of the one-trip slope's 95% CI (the
	// gray band of the paper's figure).
	SlopeCI95 float64
	// ToolF and ToolP test whether distinguishing the CLI tool from the
	// web tool's one-trip group improves the model — the paper's ANOVA
	// found no significant difference (F = 0.8262, p = 0.44).
	ToolF float64
	ToolP float64
}

// Fig4ToolValidation compares the CLI tool with the web tool on Linux
// from a host in a known location.
func (l *Lab) Fig4ToolValidation() (*Fig4Result, error) {
	from := netsim.HostID("fig4-client")
	if l.Net.Host(from) == nil {
		if err := l.Net.AddHost(&netsim.Host{ID: from, Loc: geo.Point{Lat: 48.86, Lon: 2.35}}); err != nil {
			return nil, err
		}
	}
	cli := &measure.CLITool{Net: l.Net}
	web := &measure.WebTool{Net: l.Net, OS: measure.Linux}

	// One stream per anchor, CLI drawn before web: both samples are a
	// pure function of (seed, anchor ID), so worker scheduling cannot
	// change them and the regression is identical at any concurrency.
	anchors := l.Cons.Anchors()
	type fig4Slot struct {
		base   float64
		cliRTT float64
		cliOK  bool
		web    measure.Sample
		webOK  bool
	}
	slots := make([]fig4Slot, len(anchors))
	span := l.Telemetry.StartStage("fig4.measure")
	parallelFor(len(anchors), l.Concurrency(), func(i int) {
		lm := anchors[i]
		base, err := l.Net.BaseRTTMs(from, lm.Host.ID)
		if err != nil {
			return
		}
		slots[i].base = base
		rng := l.rngFor(4, lm.Host.ID)
		if s, err := cli.Measure(from, lm, rng); err == nil {
			slots[i].cliRTT, slots[i].cliOK = s.RTTms, true
		}
		if s, err := web.Measure(from, lm, rng); err == nil {
			slots[i].web, slots[i].webOK = s, true
		}
	})
	span.End()

	var x1, y1, x2, y2, xc, yc []float64
	for i := range slots {
		sl := &slots[i]
		if sl.cliOK {
			xc, yc = append(xc, sl.base), append(yc, sl.cliRTT)
		}
		if !sl.webOK {
			continue
		}
		if sl.web.Trips == 2 {
			x2, y2 = append(x2, sl.base), append(y2, sl.web.RTTms)
		} else {
			x1, y1 = append(x1, sl.base), append(y1, sl.web.RTTms)
		}
	}
	l1ci, err := mathx.FitLineCI(x1, y1)
	if err != nil {
		return nil, err
	}
	l1 := l1ci.Line
	l2, err := mathx.FitLineThroughOrigin(x2, y2)
	if err != nil {
		return nil, err
	}
	lc, err := mathx.FitLineThroughOrigin(xc, yc)
	if err != nil {
		return nil, err
	}
	// Pooled R² of the two-group model.
	var ys, preds []float64
	for i := range x1 {
		ys, preds = append(ys, y1[i]), append(preds, l1.At(x1[i]))
	}
	for i := range x2 {
		ys, preds = append(ys, y2[i]), append(preds, l2.At(x2[i]))
	}

	// ANOVA across tools (§4.3): does giving the CLI tool its own line,
	// separate from the web tool's one-trip group, explain the one-trip
	// data significantly better? Reduced model: one pooled line. Full
	// model: a line per tool.
	pooledX := append(append([]float64(nil), x1...), xc...)
	pooledY := append(append([]float64(nil), y1...), yc...)
	pooledLine, err := mathx.FitLine(pooledX, pooledY)
	if err != nil {
		return nil, err
	}
	cliLine, err := mathx.FitLine(xc, yc)
	if err != nil {
		return nil, err
	}
	rss := func(x, y []float64, l mathx.Line) float64 {
		var s float64
		for i := range x {
			r := y[i] - l.At(x[i])
			s += r * r
		}
		return s
	}
	rssReduced := rss(pooledX, pooledY, pooledLine)
	rssFull := rss(x1, y1, l1) + rss(xc, yc, cliLine)
	dfReduced := len(pooledX) - 2
	dfFull := len(pooledX) - 4
	f := mathx.FTestNested(rssReduced, rssFull, dfReduced, dfFull)
	p := mathx.FTestPValue(f, dfReduced-dfFull, dfFull)

	return &Fig4Result{
		OneTripSlope: l1.Slope,
		TwoTripSlope: l2.Slope,
		SlopeRatio:   l2.Slope / l1.Slope,
		R2:           mathx.RSquared(ys, preds),
		CLISlope:     lc.Slope,
		SlopeCI95:    l1ci.SlopeCI95,
		ToolF:        f,
		ToolP:        p,
	}, nil
}

// Render formats the result.
func (r *Fig4Result) Render() string {
	return fmt.Sprintf(
		"Fig 4 | Linux web tool: 1-trip slope %.3f±%.3f, 2-trip slope %.3f, ratio %.2f (paper 1.96), R²=%.4f (paper 0.9942); CLI slope %.3f; tool ANOVA F=%.2f p=%.2f (paper F=0.83 p=0.44)",
		r.OneTripSlope, r.SlopeCI95, r.TwoTripSlope, r.SlopeRatio, r.R2, r.CLISlope, r.ToolF, r.ToolP)
}

// Fig5Row is one browser's Windows noise profile.
type Fig5Row struct {
	Browser       string
	SlopeRatio    float64
	HighOutliers  int
	Samples       int
	MeanOutlierMs float64
}

// Fig5Windows reproduces Figures 5–6: the web tool under Windows
// browsers, with high outliers split out.
func (l *Lab) Fig5Windows() ([]Fig5Row, error) {
	from := netsim.HostID("fig5-client")
	if l.Net.Host(from) == nil {
		if err := l.Net.AddHost(&netsim.Host{ID: from, Loc: geo.Point{Lat: 48.86, Lon: 2.35}}); err != nil {
			return nil, err
		}
	}
	browsers := []struct {
		name string
		b    measure.Browser
	}{{"Chrome", measure.Chrome}, {"Firefox", measure.Firefox}, {"Edge", measure.Edge}}

	anchors := l.Cons.Anchors()
	const rounds = 2
	span := l.Telemetry.StartStage("fig5.measure")
	var rows []Fig5Row
	for bi, br := range browsers {
		web := &measure.WebTool{Net: l.Net, OS: measure.Windows, Browser: br.b}
		// Flatten rounds×anchors into one job list; each job draws from a
		// stream salted by (browser, round, anchor), so two rounds at the
		// same anchor still see independent noise and results are
		// identical at any concurrency.
		type fig5Slot struct {
			base float64
			s    measure.Sample
			ok   bool
		}
		slots := make([]fig5Slot, rounds*len(anchors))
		parallelFor(len(slots), l.Concurrency(), func(j int) {
			round, ai := j/len(anchors), j%len(anchors)
			lm := anchors[ai]
			base, err := l.Net.BaseRTTMs(from, lm.Host.ID)
			if err != nil {
				return
			}
			rng := l.rngFor(int64(500+10*bi+round), lm.Host.ID)
			s, err := web.Measure(from, lm, rng)
			if err != nil {
				return
			}
			slots[j] = fig5Slot{base: base, s: s, ok: true}
		})

		var x1, y1, x2, y2 []float64
		outliers, outlierSum := 0, 0.0
		samples := 0
		for _, sl := range slots {
			if !sl.ok {
				continue
			}
			samples++
			expected := sl.base * float64(sl.s.Trips)
			if sl.s.RTTms > expected+400 {
				outliers++
				outlierSum += sl.s.RTTms
				continue
			}
			if sl.s.Trips == 2 {
				x2, y2 = append(x2, sl.base), append(y2, sl.s.RTTms)
			} else {
				x1, y1 = append(x1, sl.base), append(y1, sl.s.RTTms)
			}
		}
		l1, err := mathx.FitLineThroughOrigin(x1, y1)
		if err != nil {
			return nil, err
		}
		l2, err := mathx.FitLineThroughOrigin(x2, y2)
		if err != nil {
			return nil, err
		}
		row := Fig5Row{
			Browser:      br.name,
			SlopeRatio:   l2.Slope / l1.Slope,
			HighOutliers: outliers,
			Samples:      samples,
		}
		if outliers > 0 {
			row.MeanOutlierMs = outlierSum / float64(outliers)
		}
		rows = append(rows, row)
	}
	span.End()
	return rows, nil
}

// RenderFig5 formats the rows.
func RenderFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5/6 | Windows browsers (paper: ratio 2.29, browser-dependent outliers):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s slope ratio %.2f, high outliers %d/%d (mean %.0f ms)\n",
			r.Browser, r.SlopeRatio, r.HighOutliers, r.Samples, r.MeanOutlierMs)
	}
	return b.String()
}

// Fig9Row summarizes one algorithm's precision CDFs over the cohort.
type Fig9Row struct {
	Algorithm string
	Hosts     int
	// Coverage is the fraction of hosts whose true location is inside
	// the prediction (paper panel A at x=0: CBG 0.90, the others ~0.50).
	Coverage float64
	// MissP90/P97: the distance from the region edge to the true
	// location at those CDF quantiles (paper: CBG < 5000 km at 97%).
	MissMedian float64
	MissP90    float64
	MissP97    float64
	// CentroidMedian is the median centroid-to-truth distance (panel B).
	CentroidMedian float64
	// AreaMedianFrac is the median region area as a fraction of Earth's
	// land area (panel C; land ≈ 150 Mm²).
	AreaMedianFrac float64
}

// earthLandAreaKm2 is the paper's reference land area (≈150 Mm²).
const earthLandAreaKm2 = 150e6

// Fig9HostRecord is one host×algorithm observation — a single point of
// the paper's three Figure 9 CDF panels.
type Fig9HostRecord struct {
	Algorithm    string
	Host         string
	MissKm       float64 // panel A: distance from region edge to truth
	CentroidKm   float64 // panel B: distance from centroid to truth
	AreaLandFrac float64 // panel C: region area / Earth land area
	Empty        bool
}

// Fig9AlgorithmComparison runs all four §3 algorithms over the
// crowdsourced cohort measured with the web tool.
func (l *Lab) Fig9AlgorithmComparison() ([]Fig9Row, error) {
	rows, _, err := l.Fig9Detailed()
	return rows, err
}

// Fig9Detailed additionally returns the per-host records behind the CDFs.
func (l *Lab) Fig9Detailed() ([]Fig9Row, []Fig9HostRecord, error) {
	type hostMeas struct {
		id    string
		truth geo.Point
		ms    []geoloc.Measurement
		ok    bool
	}
	// Measurement phase: every crowd host draws from its own stream, so
	// the cohort's samples are independent of worker scheduling.
	raw := make([]hostMeas, len(l.Crowd))
	span := l.Telemetry.StartStage("fig9.measure")
	parallelFor(len(l.Crowd), l.Concurrency(), func(i int) {
		h := l.Crowd[i]
		samples := h.MeasureAllAnchors(l.Cons, l.rngFor(9, h.ID))
		if len(samples) < 8 {
			return
		}
		raw[i] = hostMeas{id: string(h.ID), truth: h.TrueLoc, ms: measure.Measurements(samples), ok: true}
	})
	span.End()
	var data []hostMeas
	for _, d := range raw {
		if d.ok {
			data = append(data, d)
		}
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("experiments: no crowd measurements")
	}

	// Localization phase: Locate is deterministic given the measurements
	// (and all calibration state is read-only), so parallelizing per host
	// needs only per-index slots merged in cohort order.
	span = l.Telemetry.StartStage("fig9.locate")
	var rows []Fig9Row
	var records []Fig9HostRecord
	for _, alg := range l.Algorithms() {
		recs := make([]Fig9HostRecord, len(data))
		parallelFor(len(data), l.Concurrency(), func(i int) {
			d := data[i]
			rec := Fig9HostRecord{Algorithm: alg.Name(), Host: d.id}
			region, err := alg.Locate(d.ms)
			if err != nil || region == nil || region.Empty() {
				rec.Empty = true
				rec.MissKm, rec.CentroidKm = geo.HalfEquatorKm, geo.HalfEquatorKm
			} else {
				rec.MissKm = region.DistanceToPointKm(d.truth)
				c, _ := region.Centroid()
				rec.CentroidKm = geo.DistanceKm(c, d.truth)
				rec.AreaLandFrac = region.AreaKm2() / earthLandAreaKm2
			}
			recs[i] = rec
		})
		var misses, centroids, areas []float64
		covered := 0
		for _, rec := range recs {
			records = append(records, rec)
			misses = append(misses, rec.MissKm)
			centroids = append(centroids, rec.CentroidKm)
			if rec.Empty {
				areas = append(areas, 0)
				continue
			}
			if rec.MissKm <= 0 {
				covered++
			}
			areas = append(areas, rec.AreaLandFrac)
		}
		rows = append(rows, Fig9Row{
			Algorithm:      alg.Name(),
			Hosts:          len(data),
			Coverage:       float64(covered) / float64(len(data)),
			MissMedian:     mathx.Quantile(misses, 0.5),
			MissP90:        mathx.Quantile(misses, 0.9),
			MissP97:        mathx.Quantile(misses, 0.97),
			CentroidMedian: mathx.Quantile(centroids, 0.5),
			AreaMedianFrac: mathx.Quantile(areas, 0.5),
		})
	}
	span.End()
	return rows, records, nil
}

// RenderFig9 formats the rows.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 | algorithm comparison over %d crowd hosts (paper: CBG covers 90%%, others ~50%%; CBG regions much larger):\n", rows[0].Hosts)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-13s coverage %.0f%%  miss p50/p90/p97 %6.0f/%6.0f/%6.0f km  centroid p50 %6.0f km  area p50 %.3f of land\n",
			r.Algorithm, 100*r.Coverage, r.MissMedian, r.MissP90, r.MissP97, r.CentroidMedian, r.AreaMedianFrac)
	}
	return b.String()
}

// Fig10Result summarizes bestline/baseline estimate-to-truth ratios over
// all anchor pairs.
type Fig10Result struct {
	Pairs               int
	BestlineUnderFrac   float64 // fraction of bestline estimates below truth (paper: small)
	BaselineUnderFrac   float64 // fraction of baseline estimates below truth (paper: tiny, short distances only)
	BestlineMedianRatio float64
}

// Fig10EstimateRatios computes the Figure 10 distributions, using the
// landmarks themselves as targets of one another (as the paper does,
// because their positions are exactly known).
func (l *Lab) Fig10EstimateRatios() (*Fig10Result, error) {
	cal := l.CBGpp.Calibration()
	anchors := l.Cons.Anchors()
	// Pure computation over the calibration pairs — no randomness — so
	// parallelizing per anchor with partials merged in anchor order is
	// trivially deterministic.
	type fig10Part struct {
		pairs, bestUnder, baseUnder int
		ratios                      []float64
	}
	parts := make([]fig10Part, len(anchors))
	span := l.Telemetry.StartStage("fig10.pairs")
	parallelFor(len(anchors), l.Concurrency(), func(i int) {
		a := anchors[i]
		p := &parts[i]
		for _, pair := range l.Cons.CalibrationPairs(a.Host.ID) {
			truth := pair.DistKm
			if truth < 1 {
				continue
			}
			oneWay := geo.OneWayMs(pair.MinRTTms())
			best := cal.MaxDistanceKm(a.Host.ID, oneWay)
			base := geo.MaxDistanceKm(oneWay, geo.BaselineSpeedKmPerMs)
			p.pairs++
			if best < truth {
				p.bestUnder++
			}
			if base < truth {
				p.baseUnder++
			}
			p.ratios = append(p.ratios, best/truth)
		}
	})
	span.End()
	res := &Fig10Result{}
	var ratios []float64
	for i := range parts {
		res.Pairs += parts[i].pairs
		res.BestlineUnderFrac += float64(parts[i].bestUnder)
		res.BaselineUnderFrac += float64(parts[i].baseUnder)
		ratios = append(ratios, parts[i].ratios...)
	}
	if res.Pairs == 0 {
		return nil, fmt.Errorf("experiments: no pairs")
	}
	res.BestlineUnderFrac /= float64(res.Pairs)
	res.BaselineUnderFrac /= float64(res.Pairs)
	res.BestlineMedianRatio = mathx.Quantile(ratios, 0.5)
	return res, nil
}

// Render formats the result.
func (r *Fig10Result) Render() string {
	return fmt.Sprintf(
		"Fig 10 | %d anchor pairs: bestline underestimates %.1f%% (paper: a small fraction), baseline underestimates %.2f%%, median bestline/true ratio %.2f",
		r.Pairs, 100*r.BestlineUnderFrac, 100*r.BaselineUnderFrac, r.BestlineMedianRatio)
}

// Fig11Bin is one distance bin of the landmark-effectiveness analysis.
type Fig11Bin struct {
	MaxDistKm     float64
	Effective     int
	Ineffective   int
	MeanReduction float64 // km², over effective measurements
}

// Fig11Result is the full Figure 11 histogram plus the correlation the
// paper reports as absent.
type Fig11Result struct {
	Bins []Fig11Bin
	// Correlation between landmark distance and area reduction among
	// effective measurements (paper: none; |r| small).
	DistanceReductionCorr float64
}

// Fig11LandmarkEffectiveness measures, over a subset of crowd hosts
// against all anchors, which measurements actually shrink the CBG++
// prediction.
func (l *Lab) Fig11LandmarkEffectiveness(maxHosts int) (*Fig11Result, error) {
	if maxHosts <= 0 || maxHosts > len(l.Crowd) {
		maxHosts = len(l.Crowd)
	}
	edges := []float64{1000, 2500, 5000, 7500, 10000, 15000, geo.HalfEquatorKm}
	bins := make([]Fig11Bin, len(edges))
	for i, e := range edges {
		bins[i].MaxDistKm = e
	}

	// Each host's leave-one-out sweep is independent: it accumulates into
	// local bins (with MeanReduction holding the sum until the final
	// division) and local dists/reductions, merged in host order below.
	type fig11Part struct {
		bins              []Fig11Bin
		dists, reductions []float64
	}
	parts := make([]fig11Part, maxHosts)
	span := l.Telemetry.StartStage("fig11.measure")
	parallelFor(maxHosts, l.Concurrency(), func(hi int) {
		h := l.Crowd[hi]
		samples := h.MeasureAllAnchors(l.Cons, l.rngFor(11, h.ID))
		ms := measure.Measurements(samples)
		if len(ms) < 8 {
			return
		}
		full, err := l.CBGpp.Locate(ms)
		if err != nil || full.Empty() {
			return
		}
		part := &parts[hi]
		part.bins = make([]Fig11Bin, len(edges))
		fullArea := full.AreaKm2()
		for drop := range ms {
			subset := make([]geoloc.Measurement, 0, len(ms)-1)
			subset = append(subset, ms[:drop]...)
			subset = append(subset, ms[drop+1:]...)
			without, err := l.CBGpp.Locate(subset)
			if err != nil {
				continue
			}
			reduction := without.AreaKm2() - fullArea
			dist := geo.DistanceKm(ms[drop].Landmark, h.TrueLoc)
			bi := 0
			for bi < len(edges)-1 && dist > edges[bi] {
				bi++
			}
			if reduction > 1 { // the measurement shrank the region
				part.bins[bi].Effective++
				part.bins[bi].MeanReduction += reduction
				part.dists = append(part.dists, dist)
				part.reductions = append(part.reductions, reduction)
			} else {
				part.bins[bi].Ineffective++
			}
		}
	})
	span.End()

	var dists, reductions []float64
	for hi := range parts {
		part := &parts[hi]
		for bi := range part.bins {
			bins[bi].Effective += part.bins[bi].Effective
			bins[bi].Ineffective += part.bins[bi].Ineffective
			bins[bi].MeanReduction += part.bins[bi].MeanReduction
		}
		dists = append(dists, part.dists...)
		reductions = append(reductions, part.reductions...)
	}
	for i := range bins {
		if bins[i].Effective > 0 {
			bins[i].MeanReduction /= float64(bins[i].Effective)
		}
	}
	res := &Fig11Result{Bins: bins}
	if len(dists) > 2 {
		res.DistanceReductionCorr = pearson(dists, reductions)
	}
	return res, nil
}

func pearson(x, y []float64) float64 {
	mx, my := mathx.Mean(x), mathx.Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}

// Render formats the result.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11 | landmark effectiveness (paper: effective measurements come from nearby landmarks; no distance↔reduction correlation):\n")
	for _, bin := range r.Bins {
		total := bin.Effective + bin.Ineffective
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "  ≤%6.0f km: %3d effective / %3d total (%.0f%%), mean reduction %.2e km²\n",
			bin.MaxDistKm, bin.Effective, total, 100*float64(bin.Effective)/float64(total), bin.MeanReduction)
	}
	fmt.Fprintf(&b, "  distance↔reduction correlation r=%.3f\n", r.DistanceReductionCorr)
	return b.String()
}

// CoverageResult is the §5.1 headline: CBG++ eliminates CBG's misses.
type CoverageResult struct {
	Hosts       int
	CBGMisses   int
	CBGEmpty    int
	CBGppMisses int
	CBGppEmpty  int
}

// CBGppCoverage reruns the crowd validation with both CBG and CBG++.
func (l *Lab) CBGppCoverage() (*CoverageResult, error) {
	// Tolerate one grid cell of slack when deciding "covered": the
	// discretized region boundary is a cell wide.
	slack := 1.2 * 111.195 * l.Env.Grid.Resolution()
	type covSlot struct {
		measured                           bool
		cbgMiss, cbgEmpty, ppMiss, ppEmpty bool
	}
	slots := make([]covSlot, len(l.Crowd))
	span := l.Telemetry.StartStage("coverage.measure")
	parallelFor(len(l.Crowd), l.Concurrency(), func(i int) {
		h := l.Crowd[i]
		samples := h.MeasureAllAnchors(l.Cons, l.rngFor(51, h.ID))
		ms := measure.Measurements(samples)
		if len(ms) < 8 {
			return
		}
		sl := &slots[i]
		sl.measured = true
		if region, err := l.CBG.Locate(ms); err != nil || region.Empty() {
			sl.cbgEmpty, sl.cbgMiss = true, true
		} else if region.DistanceToPointKm(h.TrueLoc) > slack {
			sl.cbgMiss = true
		}
		if region, err := l.CBGpp.Locate(ms); err != nil || region.Empty() {
			sl.ppEmpty, sl.ppMiss = true, true
		} else if region.DistanceToPointKm(h.TrueLoc) > slack {
			sl.ppMiss = true
		}
	})
	span.End()
	res := &CoverageResult{}
	for _, sl := range slots {
		if !sl.measured {
			continue
		}
		res.Hosts++
		if sl.cbgMiss {
			res.CBGMisses++
		}
		if sl.cbgEmpty {
			res.CBGEmpty++
		}
		if sl.ppMiss {
			res.CBGppMisses++
		}
		if sl.ppEmpty {
			res.CBGppEmpty++
		}
	}
	return res, nil
}

// Render formats the result.
func (r *CoverageResult) Render() string {
	return fmt.Sprintf(
		"§5.1 | coverage over %d crowd hosts: CBG missed %d (%d empty regions); CBG++ missed %d (%d empty) — paper: CBG++ eliminated all remaining misses",
		r.Hosts, r.CBGMisses, r.CBGEmpty, r.CBGppMisses, r.CBGppEmpty)
}

// sortedAnchorIDs is a test helper exposed for determinism checks.
func (l *Lab) sortedAnchorIDs() []string {
	ids := make([]string, 0, len(l.Cons.Anchors()))
	for _, a := range l.Cons.Anchors() {
		ids = append(ids, string(a.Host.ID))
	}
	sort.Strings(ids)
	return ids
}
