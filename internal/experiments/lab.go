// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate: algorithm validation on the
// crowdsourced cohort (Figures 2, 4–6, 9–11), the proxy adaptations
// (Figures 12–13), and the full seven-provider audit (Figures 14–23).
//
// A Lab bundles the expensive shared state — the network, the landmark
// constellation, the calibrated algorithms, the proxy fleet and the
// crowdsourced cohort — so that one setup serves all experiments, and
// the audit pipeline (the most expensive run) is computed once and
// memoized.
package experiments

import (
	"fmt"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/crowd"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/hybrid"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/octant"
	"activegeo/internal/proxy"
	"activegeo/internal/spotter"
	"activegeo/internal/telemetry"
)

// Config sizes a Lab.
type Config struct {
	Seed       int64
	Anchors    int
	Probes     int
	GridResDeg float64
	FleetTotal int
	Volunteers int
	MTurkers   int
	// Concurrency bounds the worker pools of the parallel pipelines
	// (audit measurement, localization+assessment, crowd validation).
	// 0 means GOMAXPROCS. Results are identical at every setting: all
	// randomness comes from per-entity streams derived from Seed and
	// the entity's host ID, never from a generator shared across
	// workers, so concurrency changes only wall-clock time.
	Concurrency int
	// Faults arms the netsim fault-injection layer for the measurement
	// pipelines (it is applied after construction and calibration, so
	// the landmark atlas is built on the clean network exactly as
	// before). The zero value keeps every pipeline byte-identical to
	// the fault-free engine.
	Faults netsim.FaultConfig
}

// PaperConfig reproduces the paper's scale: 250 anchors, ~800 stable
// probes, 2269 proxy servers, 190 crowdsourced hosts.
func PaperConfig() Config {
	return Config{
		Seed:       2018,
		Anchors:    250,
		Probes:     800,
		GridResDeg: 1.0,
		FleetTotal: 2269,
		Volunteers: 40,
		MTurkers:   150,
	}
}

// QuickConfig is a reduced-scale lab for tests and benchmarks: the same
// pipeline at roughly a tenth the size.
func QuickConfig() Config {
	return Config{
		Seed:       2018,
		Anchors:    80,
		Probes:     120,
		GridResDeg: 1.5,
		FleetTotal: 350,
		Volunteers: 12,
		MTurkers:   48,
	}
}

// Lab is the shared experimental setup.
type Lab struct {
	Cfg   Config
	Net   *netsim.Network
	Cons  *atlas.Constellation
	Env   *geoloc.Env
	Fleet *proxy.Fleet
	Crowd []*crowd.Host

	// Client is the measurement client host (Frankfurt, like the paper's).
	Client netsim.HostID

	// Calibrated algorithms.
	CBG     *cbg.CBG
	Octant  *octant.Octant
	Spotter *spotter.Spotter
	Hybrid  *hybrid.Hybrid
	CBGpp   *cbgpp.CBGPP

	// Telemetry, when non-nil, receives stage timings, counters and
	// progress events from the pipelines (a nil collector is valid and
	// ignored — see internal/telemetry).
	Telemetry *telemetry.Collector

	// Adversary, when armed, makes a hash-chosen slice of the fleet lie
	// about its location and a slice of the anchors turn Byzantine, and
	// switches the audit's detection layer on (landmark cross-validation
	// plus per-server manipulation verdicts). nil — the default — keeps
	// every pipeline byte-identical to the honest engine.
	Adversary *measure.AdversaryPlan

	// Memoized audit results (Figure 17 pipeline).
	audit *AuditRun
	// Memoized foreign constellations (§8.1 multi-constellation study);
	// hosts can only be added to the network once.
	foreign map[string][]*atlas.Landmark
}

// NewLab builds and calibrates everything.
func NewLab(cfg Config) (*Lab, error) {
	if cfg.Anchors == 0 {
		cfg = PaperConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := netsim.New(cfg.Seed)

	cons, err := atlas.Build(net, atlas.Config{
		Anchors:        cfg.Anchors,
		Probes:         cfg.Probes,
		SamplesPerPair: 4,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: building constellation: %w", err)
	}

	env := geoloc.NewEnv(cfg.GridResDeg)

	fleet, err := proxy.BuildFleet(net, proxy.Config{
		TotalServers:             cfg.FleetTotal,
		ICMPBlockFraction:        0.90,
		DropTimeExceededFraction: 0.33,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: building fleet: %w", err)
	}

	cohort, err := crowd.Build(cons, crowd.Config{
		Volunteers: cfg.Volunteers,
		MTurk:      cfg.MTurkers,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: building crowd: %w", err)
	}

	client := netsim.HostID("client-frankfurt")
	if err := net.AddHost(&netsim.Host{
		ID:            client,
		Loc:           geo.Point{Lat: 50.11, Lon: 8.68},
		AccessDelayMs: 1,
	}); err != nil {
		return nil, err
	}

	lab := &Lab{Cfg: cfg, Net: net, Cons: cons, Env: env, Fleet: fleet, Crowd: cohort, Client: client}

	cbgCal, err := cbg.Calibrate(cons, cbg.Options{})
	if err != nil {
		return nil, err
	}
	lab.CBG = cbg.New(env, cbgCal)

	octCal, err := octant.Calibrate(cons)
	if err != nil {
		return nil, err
	}
	lab.Octant = octant.New(env, octCal)

	model, err := spotter.Calibrate(cons)
	if err != nil {
		return nil, err
	}
	lab.Spotter = spotter.New(env, model)
	lab.Hybrid = hybrid.New(env, model)

	ppCal, err := cbgpp.Calibrate(cons, cbgpp.Options{})
	if err != nil {
		return nil, err
	}
	lab.CBGpp = cbgpp.New(env, ppCal, cbgpp.Options{})

	// Arm fault injection only now: the constellation's mesh calibration
	// above always runs on the clean network, matching the paper's setup
	// where landmark infrastructure is vetted before the audit begins.
	net.SetFaults(cfg.Faults)

	return lab, nil
}

// policy returns the measurement resilience policy matching the
// network's live fault configuration: the default retry/backoff/budget
// profile when faults are armed, the zero policy (historical fault-free
// path, byte-identical output) otherwise. Reading the network rather
// than Cfg lets the robustness sweep re-arm faults on a built lab.
func (l *Lab) policy() measure.Policy {
	if l.Net.Faults().Enabled() {
		return measure.DefaultPolicy()
	}
	return measure.Policy{}
}

// Algorithms returns the four §3 algorithms in paper order (Figure 9).
func (l *Lab) Algorithms() []geoloc.Algorithm {
	return []geoloc.Algorithm{l.CBG, l.Octant, l.Spotter, l.Hybrid}
}

// rng returns a fresh deterministic stream for an experiment, decoupled
// from construction randomness so experiments can run in any order.
// It is only suitable for serial single-consumer use; parallel stages
// must use rngFor so every entity gets its own stream.
func (l *Lab) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(l.streamSeed(salt)))
}

// streamSeed is the base seed of an experiment's randomness — the same
// value rng(salt) seeds its serial generator with, and the base from
// which rngFor and measure.Batch derive per-entity streams.
func (l *Lab) streamSeed(salt int64) int64 {
	return l.Cfg.Seed*1000003 + salt
}

// rngFor returns the deterministic random stream for one entity (a
// proxy server, crowd host or anchor) within the experiment identified
// by salt. The stream is a pure function of (lab seed, salt, host ID):
// two runs — serial or parallel, in any fleet order — draw identical
// noise for the same entity. Sharing one *rand.Rand across goroutines
// is forbidden: math/rand sources are not safe for concurrent use, and
// even a locked shared stream would make results depend on scheduling
// order.
func (l *Lab) rngFor(salt int64, id netsim.HostID) *rand.Rand {
	return rand.New(rand.NewSource(measure.StreamSeed(l.streamSeed(salt), id)))
}

// ResetAudit drops the memoized audit so the full pipeline can be
// re-run (used by benchmarks that time the pipeline itself).
func (l *Lab) ResetAudit() { l.audit = nil }
