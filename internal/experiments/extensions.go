package experiments

import (
	"fmt"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/mathx"
	"activegeo/internal/measure"
	"activegeo/internal/proxy"
)

// The experiments in this file reproduce the paper's §8/§8.1 discussion
// and future-work items: iterative refinement, proxy co-location
// detection, the indirect-measurement error study, and the adversarial
// RTT-manipulation threat analysis.

// ExtRefinementResult summarizes the §8.1 iterative-refinement proposal.
type ExtRefinementResult struct {
	Hosts          int
	MeanAreaBefore float64
	MeanAreaAfter  float64
	MeanRounds     float64
	StillCovered   int
}

// ExtRefinement measures how much iterative refinement shrinks CBG++
// regions on crowd hosts, starting from a sparse two-phase result.
func (l *Lab) ExtRefinement(maxHosts int) (*ExtRefinementResult, error) {
	rng := l.rng(81)
	if maxHosts <= 0 || maxHosts > len(l.Crowd) {
		maxHosts = len(l.Crowd)
	}
	tool := &measure.CLITool{Net: l.Net}
	ref := &measure.Refiner{
		Cons:   l.Cons,
		Tool:   tool,
		Locate: func(ms []geoloc.Measurement) (*grid.Region, error) { return l.CBGpp.Locate(ms) },
	}
	res := &ExtRefinementResult{}
	for _, h := range l.Crowd[:maxHosts] {
		tp := &measure.TwoPhase{Cons: l.Cons, Tool: tool, SecondPhase: 8}
		initial, err := tp.Run(h.ID, rng)
		if err != nil {
			continue
		}
		rr, err := ref.Run(h.ID, initial.Measurements(), rng)
		if err != nil {
			continue
		}
		res.Hosts++
		res.MeanAreaBefore += rr.AreaHistory[0]
		res.MeanAreaAfter += rr.Region.AreaKm2()
		res.MeanRounds += float64(rr.Rounds)
		if rr.Region.DistanceToPointKm(h.TrueLoc) <= 1.2*111.195*l.Env.Grid.Resolution() {
			res.StillCovered++
		}
	}
	if res.Hosts == 0 {
		return nil, fmt.Errorf("experiments: no refinable hosts")
	}
	n := float64(res.Hosts)
	res.MeanAreaBefore /= n
	res.MeanAreaAfter /= n
	res.MeanRounds /= n
	return res, nil
}

// Render formats the result.
func (r *ExtRefinementResult) Render() string {
	return fmt.Sprintf(
		"Ext §8.1 refinement | %d hosts: mean region %.0f → %.0f km² (%.1f rounds avg), %d/%d still cover the truth",
		r.Hosts, r.MeanAreaBefore, r.MeanAreaAfter, r.MeanRounds, r.StillCovered, r.Hosts)
}

// ExtCoLocationResult summarizes the §8.1 proxy-mesh pilot.
type ExtCoLocationResult struct {
	ServersTested      int
	Groups             int
	GroupedServers     int
	CrossCountryGroups int
	// Accuracy: fraction of groups whose members truly share a DC.
	PureGroups int
}

// ExtCoLocation runs the proxy-to-proxy RTT mesh over one provider's
// servers.
func (l *Lab) ExtCoLocation(providerName string, maxServers int) (*ExtCoLocationResult, error) {
	p := l.Fleet.Provider(providerName)
	if p == nil {
		return nil, fmt.Errorf("experiments: unknown provider %q", providerName)
	}
	servers := p.Servers
	if maxServers > 0 && len(servers) > maxServers {
		servers = servers[:maxServers]
	}
	rng := l.rng(82)
	groups := proxy.CoLocate(l.Net, servers, 0, 3, rng)
	res := &ExtCoLocationResult{ServersTested: len(servers), Groups: len(groups)}
	for _, g := range groups {
		res.GroupedServers += len(g)
		pure := true
		for _, s := range g[1:] {
			if s.Host.DataCenter != g[0].Host.DataCenter {
				pure = false
			}
		}
		if pure {
			res.PureGroups++
		}
	}
	res.CrossCountryGroups = len(proxy.CrossCountryCoLocations(groups))
	return res, nil
}

// Render formats the result.
func (r *ExtCoLocationResult) Render() string {
	return fmt.Sprintf(
		"Ext §8.1 co-location | %d servers: %d groups (%d servers, %d pure same-DC), %d groups claim multiple countries (the paper's pilot observation)",
		r.ServersTested, r.Groups, r.GroupedServers, r.PureGroups, r.CrossCountryGroups)
}

// ExtIndirectErrorResult quantifies the error added by the indirect
// (through-proxy) measurement procedure — the §8.1 "test-bench VPN
// servers of our own, in known locations" study.
type ExtIndirectErrorResult struct {
	Servers            int
	MeanDirectMissKm   float64
	MeanIndirectMissKm float64
	MeanDirectArea     float64
	MeanIndirectArea   float64
}

// ExtIndirectError places test-bench proxies in known locations and
// locates each twice: directly (measuring from the server itself, as if
// we owned it) and indirectly (through the proxy with η correction).
func (l *Lab) ExtIndirectError(maxServers int) (*ExtIndirectErrorResult, error) {
	rng := l.rng(83)
	servers := l.Fleet.Servers()
	if maxServers > 0 && len(servers) > maxServers {
		servers = servers[:maxServers]
	}
	tool := &measure.CLITool{Net: l.Net}
	res := &ExtIndirectErrorResult{}
	for _, s := range servers {
		// Direct: we own the test-bench server and run the tool on it.
		tp := &measure.TwoPhase{Cons: l.Cons, Tool: tool}
		direct, err := tp.Run(s.Host.ID, rng)
		if err != nil {
			continue
		}
		directRegion, err := l.CBGpp.Locate(direct.Measurements())
		if err != nil || directRegion.Empty() {
			continue
		}
		// Indirect: the §6 pipeline.
		ind, err := measure.ProxiedTwoPhase(l.Cons, l.Client, s.Host.ID, measure.DefaultEta, rng)
		if err != nil {
			continue
		}
		indRegion, err := l.CBGpp.Locate(ind.Measurements())
		if err != nil || indRegion.Empty() {
			continue
		}
		res.Servers++
		dc, _ := directRegion.Centroid()
		ic, _ := indRegion.Centroid()
		res.MeanDirectMissKm += geo.DistanceKm(dc, s.Host.Loc)
		res.MeanIndirectMissKm += geo.DistanceKm(ic, s.Host.Loc)
		res.MeanDirectArea += directRegion.AreaKm2()
		res.MeanIndirectArea += indRegion.AreaKm2()
	}
	if res.Servers == 0 {
		return nil, fmt.Errorf("experiments: no test-bench servers located")
	}
	n := float64(res.Servers)
	res.MeanDirectMissKm /= n
	res.MeanIndirectMissKm /= n
	res.MeanDirectArea /= n
	res.MeanIndirectArea /= n
	return res, nil
}

// Render formats the result.
func (r *ExtIndirectErrorResult) Render() string {
	return fmt.Sprintf(
		"Ext §8.1 indirect error | %d test-bench servers: centroid miss %.0f km direct vs %.0f km indirect; region %.0f vs %.0f km²",
		r.Servers, r.MeanDirectMissKm, r.MeanIndirectMissKm, r.MeanDirectArea, r.MeanIndirectArea)
}

// ExtConstellationsResult is the §8.1 multi-constellation study: "This
// would allow us to compare the delay-distance relationships observed
// across constellations to those observed within a single constellation,
// and thus investigate the degree of overestimation."
type ExtConstellationsResult struct {
	// WithinMedianRatio is the median bestline-estimate/true-distance
	// ratio for RIPE-anchor↔RIPE-anchor measurements.
	WithinMedianRatio float64
	// CrossMedianRatio maps constellation name to the same ratio for
	// RIPE-anchor→foreign-node measurements. Ratios above the within
	// value quantify how much RIPE-calibrated bestlines overestimate for
	// ordinary hosts.
	CrossMedianRatio map[string]float64
	Pairs            map[string]int
}

// ExtConstellations builds CAIDA-Ark-like and PlanetLab-like
// constellations in the same network and measures the overestimation of
// the RIPE-calibrated bestlines against them.
func (l *Lab) ExtConstellations() (*ExtConstellationsResult, error) {
	rng := l.rng(85)
	cal := l.CBGpp.Calibration()

	res := &ExtConstellationsResult{
		CrossMedianRatio: map[string]float64{},
		Pairs:            map[string]int{},
	}
	// Within-RIPE baseline.
	var within []float64
	for _, a := range l.Cons.Anchors() {
		for _, pair := range l.Cons.CalibrationPairs(a.Host.ID) {
			if pair.DistKm < 100 {
				continue
			}
			est := cal.MaxDistanceKm(a.Host.ID, geo.OneWayMs(pair.MinRTTms()))
			within = append(within, est/pair.DistKm)
		}
	}
	res.WithinMedianRatio = median(within)
	res.Pairs["ripe"] = len(within)

	foreign := []struct {
		name                 string
		accessMin, accessMax float64
	}{
		// Ark monitors: mixed hosting, noticeably worse last mile.
		{"ark", 2.0, 8.0},
		// PlanetLab: academic networks, excellent connectivity.
		{"planetlab", 0.3, 1.0},
	}
	for _, f := range foreign {
		other, err := buildForeign(l, f.name, f.accessMin, f.accessMax, rng)
		if err != nil {
			return nil, err
		}
		var ratios []float64
		for _, a := range l.Cons.Anchors() {
			for _, n := range other {
				d := geo.DistanceKm(a.Host.Loc, n.Host.Loc)
				if d < 100 {
					continue
				}
				rtt, err := l.Net.MinOfSamples(a.Host.ID, n.Host.ID, 4, rng)
				if err != nil {
					continue
				}
				est := cal.MaxDistanceKm(a.Host.ID, geo.OneWayMs(rtt))
				ratios = append(ratios, est/d)
			}
		}
		res.CrossMedianRatio[f.name] = median(ratios)
		res.Pairs[f.name] = len(ratios)
	}
	return res, nil
}

func buildForeign(l *Lab, name string, accessMin, accessMax float64, rng *rand.Rand) ([]*atlas.Landmark, error) {
	if lms, ok := l.foreign[name]; ok {
		return lms, nil
	}
	n := l.Cfg.Anchors / 3
	if n < 10 {
		n = 10
	}
	cons, err := atlas.Build(l.Net, atlas.Config{
		Anchors:           n,
		Probes:            0,
		SamplesPerPair:    1,
		Name:              name,
		AnchorAccessMinMs: accessMin,
		AnchorAccessMaxMs: accessMax,
	}, rng)
	if err != nil {
		return nil, err
	}
	if l.foreign == nil {
		l.foreign = map[string][]*atlas.Landmark{}
	}
	l.foreign[name] = cons.Anchors()
	return l.foreign[name], nil
}

func median(xs []float64) float64 { return mathx.Quantile(xs, 0.5) }

// Render formats the result.
func (r *ExtConstellationsResult) Render() string {
	return fmt.Sprintf(
		"Ext §8.1 constellations | bestline est/true median: within RIPE %.2f (%d pairs), vs Ark %.2f (%d), vs PlanetLab %.2f (%d) — ratios >within quantify anchor-subnet overestimation",
		r.WithinMedianRatio, r.Pairs["ripe"],
		r.CrossMedianRatio["ark"], r.Pairs["ark"],
		r.CrossMedianRatio["planetlab"], r.Pairs["planetlab"])
}

// ExtAdversaryResult quantifies the §8 threat: a hostile proxy forging
// RTTs to appear at a decoy location.
type ExtAdversaryResult struct {
	TrueLoc  geo.Point
	DecoyLoc geo.Point
	// Honest/CBGpp: centroid distance to truth without manipulation.
	HonestMissKm float64
	// Forged*: centroid distance to the *decoy* under attack — small
	// values mean the attack succeeded.
	ForgedCBGppToDecoyKm   float64
	ForgedSpotterToDecoyKm float64
	// CBGppCoversTruth reports whether the forged CBG++ region still
	// contains the true location (it should not, if the attack works).
	CBGppCoversTruth bool
}

// ExtAdversary runs the decoy attack against one proxy and locates the
// forged measurements with CBG++ and Spotter.
func (l *Lab) ExtAdversary() (*ExtAdversaryResult, error) {
	rng := l.rng(84)
	s := l.Fleet.Servers()[0]
	trueLoc := s.Host.Loc
	decoy := geo.Point{Lat: 39.02, Lon: 125.74} // claims Pyongyang

	inner := &measure.ProxiedTool{Net: l.Net, Client: l.Client, Proxy: s.Host.ID}
	self, err := inner.SelfPing(rng)
	if err != nil {
		return nil, err
	}

	// Honest baseline.
	var honest []measure.Sample
	for _, lm := range l.Cons.Anchors() {
		smp, err := inner.Measure("", lm, rng)
		if err != nil {
			continue
		}
		honest = append(honest, smp)
	}
	honestMs := measure.Measurements(measure.CorrectForProxy(honest, self, measure.DefaultEta))
	honestRegion, err := l.CBGpp.Locate(honestMs)
	if err != nil {
		return nil, err
	}
	hc, _ := honestRegion.Centroid()

	// Attack.
	adv := &measure.AdversarialProxiedTool{Inner: inner, Decoy: &decoy}
	forged := adv.MeasureAll(l.Cons.Anchors(), rng)
	forgedMs := measure.Measurements(measure.CorrectForProxy(forged, self, measure.DefaultEta))

	forgedCBGpp, err := l.CBGpp.Locate(forgedMs)
	if err != nil {
		return nil, err
	}
	fc, _ := forgedCBGpp.Centroid()
	forgedSpotter, err := l.Spotter.Locate(forgedMs)
	if err != nil {
		return nil, err
	}
	sc, _ := forgedSpotter.Centroid()

	return &ExtAdversaryResult{
		TrueLoc:                trueLoc,
		DecoyLoc:               decoy,
		HonestMissKm:           geo.DistanceKm(hc, trueLoc),
		ForgedCBGppToDecoyKm:   geo.DistanceKm(fc, decoy),
		ForgedSpotterToDecoyKm: geo.DistanceKm(sc, decoy),
		CBGppCoversTruth:       forgedCBGpp.DistanceToPointKm(trueLoc) == 0,
	}, nil
}

// Render formats the result.
func (r *ExtAdversaryResult) Render() string {
	return fmt.Sprintf(
		"Ext §8 adversary | proxy truly at %v forging decoy %v: honest centroid %.0f km from truth; forged centroids land %.0f km (CBG++) / %.0f km (Spotter) from the DECOY; region still covers truth: %v",
		r.TrueLoc, r.DecoyLoc, r.HonestMissKm, r.ForgedCBGppToDecoyKm, r.ForgedSpotterToDecoyKm, r.CBGppCoversTruth)
}
