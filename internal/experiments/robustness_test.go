package experiments

import (
	"reflect"
	"testing"

	"activegeo/internal/netsim"
)

func robustnessLab(t *testing.T, concurrency int) *Lab {
	t.Helper()
	lab, err := NewLab(tinyAuditConfig(concurrency))
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

// TestRobustnessToleranceUpToThreshold: the ISSUE's headline assertion —
// the credible/uncertain/false tallies stay within the documented
// tolerance band of the fault-free baseline for every loss rate at or
// below RobustnessLossThreshold.
func TestRobustnessToleranceUpToThreshold(t *testing.T) {
	lab := robustnessLab(t, 4)
	res, err := lab.Robustness(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(DefaultLossSweep) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(DefaultLossSweep))
	}
	if res.Points[0].Loss != 0 {
		t.Fatal("sweep must start at the fault-free baseline")
	}
	baseline := res.Points[0].Tally
	if baseline.Total() == 0 {
		t.Fatal("empty baseline tally")
	}
	for _, p := range res.Points {
		if p.Loss > RobustnessLossThreshold {
			continue
		}
		if !p.WithinTolerance(baseline, RobustnessTallyTolerance) {
			t.Errorf("loss %.2f: tally %d/%d/%d outside ±%.0f%% of baseline %d/%d/%d",
				p.Loss, p.Tally.Credible, p.Tally.Uncertain, p.Tally.False,
				100*RobustnessTallyTolerance,
				baseline.Credible, baseline.Uncertain, baseline.False)
		}
	}
	// The sweep must actually degrade: the highest loss point records
	// injected damage.
	last := res.Points[len(res.Points)-1]
	if last.DegradedServers == 0 && last.MeasureFailures == 0 {
		t.Error("highest loss point recorded no degradation at all")
	}
	if last.MeanCoverage >= res.Points[0].MeanCoverage && last.LostLandmarks == 0 {
		t.Error("coverage did not drop and no landmarks were lost at 20% loss")
	}
	// Every point carries all five algorithms' region sizes.
	for _, p := range res.Points {
		if len(p.Areas) != 5 {
			t.Fatalf("loss %.2f: %d algorithms, want 5", p.Loss, len(p.Areas))
		}
		names := []string{"CBG", "Quasi-Octant", "Spotter", "Hybrid", "CBG++"}
		for i, a := range p.Areas {
			if a.Algorithm != names[i] {
				t.Errorf("loss %.2f: algorithm[%d] = %q, want %q", p.Loss, i, a.Algorithm, names[i])
			}
		}
	}
}

// TestRobustnessRestoresLab: the sweep must leave the lab exactly as it
// found it — fault configuration and memoized audit both restored.
func TestRobustnessRestoresLab(t *testing.T) {
	lab := robustnessLab(t, 2)
	before, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Robustness([]float64{0, 0.1}, 2); err != nil {
		t.Fatal(err)
	}
	if lab.Net.Faults().Enabled() {
		t.Error("sweep left faults armed on the lab network")
	}
	after, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("sweep dropped the lab's memoized audit")
	}
}

// TestRobustnessDeterministic: two sweeps over the same lab seed are
// identical, point by point, at different concurrency widths.
func TestRobustnessDeterministic(t *testing.T) {
	r1, err := robustnessLab(t, 1).Robustness([]float64{0, 0.15}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := robustnessLab(t, 8).Robustness([]float64{0, 0.15}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("sweep diverged across concurrency widths:\n%+v\nvs\n%+v", r1, r2)
	}
}

// TestRobustnessPointFaultShape: each point's fault config is the
// documented default profile for its loss rate.
func TestRobustnessPointFaultShape(t *testing.T) {
	lab := robustnessLab(t, 4)
	res, err := lab.Robustness([]float64{0, 0.08}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Faults.Enabled() {
		t.Error("loss 0 must run with faults disabled")
	}
	want := netsim.DefaultFaults(0.08)
	if res.Points[1].Faults != want {
		t.Errorf("faults = %+v, want %+v", res.Points[1].Faults, want)
	}
}
