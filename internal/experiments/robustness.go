package experiments

import (
	"fmt"
	"strings"

	"activegeo/internal/assess"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

// The robustness experiment: how do the audit's verdicts and the five
// algorithms' prediction regions hold up as measurement conditions
// degrade? The paper's campaign (§2, §5) faced exactly these failures —
// dark landmarks, mid-session disconnects, congested tails — and
// Abdou & van Oorschot argue a geolocation verdict is only trustworthy
// if it is stable under degraded conditions. The sweep injects the
// default fault mix at increasing loss rates and records the
// credible/uncertain/false tallies and per-algorithm region sizes.

// DefaultLossSweep is the loss-rate grid the robustness experiment and
// the BENCH_faults benchmark sweep.
var DefaultLossSweep = []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20}

// RobustnessLossThreshold is the documented loss rate up to which the
// claim-assessment tallies must stay within RobustnessTallyTolerance of
// the fault-free baseline (see DESIGN.md §10). Beyond it the audit
// still runs — the annotations just stop pretending full confidence.
const RobustnessLossThreshold = 0.10

// RobustnessTallyTolerance is the maximum fraction of the fleet whose
// verdict may flip, per tally bucket, at or below the threshold.
const RobustnessTallyTolerance = 0.15

// FaultProfile builds the fault configuration described by the cmd
// layer's -faults/-loss/-outage flags: any of them arms the default mix
// (DefaultFaults) at the given loss rate (0.1 when unspecified), and
// -outage overrides the landmark-outage fraction. All zero = disabled.
func FaultProfile(armed bool, loss, outage float64) netsim.FaultConfig {
	if !armed && loss == 0 && outage == 0 {
		return netsim.FaultConfig{}
	}
	if loss == 0 {
		loss = 0.1
	}
	cfg := netsim.DefaultFaults(loss)
	if outage > 0 {
		cfg.OutageFraction = outage
	}
	return cfg
}

// AlgorithmArea is one algorithm's mean region size at one sweep point.
type AlgorithmArea struct {
	Algorithm   string
	Hosts       int
	MeanAreaKm2 float64
}

// RobustnessPoint is one loss rate's outcome.
type RobustnessPoint struct {
	Loss   float64
	Faults netsim.FaultConfig

	// Audit outcome at this loss rate.
	Tally           assess.Tally
	MeasureFailures int
	LocateFailures  int
	DegradedServers int
	Disconnects     int
	LostLandmarks   int
	Retries         int
	MeanCoverage    float64

	// Areas holds each algorithm's mean region size over the crowd
	// cohort, in sweep order CBG, Quasi-Octant, Spotter, Hybrid, CBG++.
	Areas []AlgorithmArea
}

// RobustnessResult is the full sweep.
type RobustnessResult struct {
	Points     []RobustnessPoint
	CrowdHosts int
}

// locators returns the five algorithms the sweep compares, in paper
// order with CBG++ last.
func (l *Lab) locators() []struct {
	name   string
	locate func([]geoloc.Measurement) (*grid.Region, error)
} {
	out := []struct {
		name   string
		locate func([]geoloc.Measurement) (*grid.Region, error)
	}{}
	for _, alg := range l.Algorithms() {
		a := alg
		out = append(out, struct {
			name   string
			locate func([]geoloc.Measurement) (*grid.Region, error)
		}{a.Name(), a.Locate})
	}
	out = append(out, struct {
		name   string
		locate func([]geoloc.Measurement) (*grid.Region, error)
	}{l.CBGpp.Name(), l.CBGpp.Locate})
	return out
}

// Robustness sweeps the default fault mix over the given loss rates
// (DefaultLossSweep when nil), running the full audit plus a crowd-
// cohort localization with all five algorithms at each point. The
// lab's fault configuration and memoized audit are restored afterwards,
// so the sweep can run against any lab without disturbing it. maxHosts
// bounds the crowd cohort (0 = all).
func (l *Lab) Robustness(lossRates []float64, maxHosts int) (*RobustnessResult, error) {
	if lossRates == nil {
		lossRates = DefaultLossSweep
	}
	if maxHosts <= 0 || maxHosts > len(l.Crowd) {
		maxHosts = len(l.Crowd)
	}
	prevFaults := l.Net.Faults()
	prevAudit := l.audit
	defer func() {
		l.Net.SetFaults(prevFaults)
		l.audit = prevAudit
	}()

	res := &RobustnessResult{CrowdHosts: maxHosts}
	span := l.Telemetry.StartStage("robustness.sweep")
	defer span.End()
	for pi, loss := range lossRates {
		cfg := netsim.DefaultFaults(loss)
		l.Net.SetFaults(cfg)
		l.audit = nil
		run, err := l.Audit()
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness audit at loss %.2f: %w", loss, err)
		}
		pt := RobustnessPoint{
			Loss:            loss,
			Faults:          cfg,
			Tally:           assess.Tabulate(run.Results),
			MeasureFailures: run.MeasureFailures,
			LocateFailures:  run.LocateFailures,
			DegradedServers: run.DegradedServers,
			Disconnects:     run.Disconnects,
			LostLandmarks:   run.LostLandmarks,
			Retries:         run.Retries,
			MeanCoverage:    1,
		}
		if len(run.Coverage) > 0 {
			// Sum in the stable Results order, not map order: float
			// addition is order-sensitive in the last ULPs and the
			// sweep promises bit-identical results across runs.
			sum := 0.0
			for _, r := range run.Results {
				if c, ok := run.Coverage[r.ServerID]; ok {
					sum += c.Coverage
				}
			}
			pt.MeanCoverage = sum / float64(len(run.Coverage))
		}
		pt.Areas = l.robustnessAreas(maxHosts)
		res.Points = append(res.Points, pt)
		l.Telemetry.Progress("robustness.sweep", pi+1, len(lossRates))
	}
	return res, nil
}

// robustnessAreas measures the crowd cohort under the network's current
// fault configuration and localizes each host with all five algorithms.
// Every host draws from its own (seed, salt 86, host ID) stream, so the
// sweep is deterministic at any concurrency and in any cohort order.
func (l *Lab) robustnessAreas(maxHosts int) []AlgorithmArea {
	locs := l.locators()
	areas := make([]AlgorithmArea, len(locs))
	for i, lc := range locs {
		areas[i].Algorithm = lc.name
	}
	pol := l.policy()
	for _, h := range l.Crowd[:maxHosts] {
		rng := l.rngFor(86, h.ID)
		tool := &measure.CLITool{Net: l.Net}
		tp := &measure.TwoPhase{Cons: l.Cons, Tool: tool}
		if pol.Enabled() {
			sess := measure.NewSession(l.Net, pol, rng)
			tool.Clock = sess.Clock
			tp.Session = sess
		}
		mres, err := tp.Run(h.ID, rng)
		if err != nil {
			continue
		}
		ms := mres.Measurements()
		if len(ms) < 4 {
			continue
		}
		for i, lc := range locs {
			region, err := lc.locate(ms)
			if err != nil || region == nil || region.Empty() {
				continue
			}
			areas[i].Hosts++
			areas[i].MeanAreaKm2 += region.AreaKm2()
		}
	}
	for i := range areas {
		if areas[i].Hosts > 0 {
			areas[i].MeanAreaKm2 /= float64(areas[i].Hosts)
		}
	}
	return areas
}

// WithinTolerance reports whether the point's tally is within tol of
// the baseline, bucket by bucket, as a fraction of the fleet size.
func (p *RobustnessPoint) WithinTolerance(baseline assess.Tally, tol float64) bool {
	total := baseline.Total()
	if total == 0 {
		return true
	}
	limit := tol * float64(total)
	diff := func(a, b int) float64 {
		d := float64(a - b)
		if d < 0 {
			d = -d
		}
		return d
	}
	return diff(p.Tally.Credible, baseline.Credible) <= limit &&
		diff(p.Tally.Uncertain, baseline.Uncertain) <= limit &&
		diff(p.Tally.False, baseline.False) <= limit
}

// Render formats the sweep as a table.
func (r *RobustnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness | audit tallies and region sizes vs injected loss (%d crowd hosts; tolerance ±%.0f%% up to loss %.2f):\n",
		r.CrowdHosts, 100*RobustnessTallyTolerance, RobustnessLossThreshold)
	fmt.Fprintf(&b, "  %-6s %-22s %-10s %-28s %s\n", "loss", "credible/uncertain/false", "coverage", "failures (meas/loc/disc)", "mean region km² per algorithm")
	for _, p := range r.Points {
		var parts []string
		for _, a := range p.Areas {
			parts = append(parts, fmt.Sprintf("%s:%.0f", a.Algorithm, a.MeanAreaKm2))
		}
		fmt.Fprintf(&b, "  %-6.2f %4d/%4d/%4d           %-10.3f %4d/%d/%d                      %s\n",
			p.Loss, p.Tally.Credible, p.Tally.Uncertain, p.Tally.False,
			p.MeanCoverage, p.MeasureFailures, p.LocateFailures, p.Disconnects,
			strings.Join(parts, " "))
	}
	return b.String()
}
