package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

// auditGoldenSHA256 pins the fault-free tinyAuditConfig(4) audit
// fingerprint as it was before the fault-injection layer existed. Any
// change to this hash means the default (faults-disabled) pipeline is
// no longer byte-identical to the pre-fault engine — the ISSUE's
// regression criterion. If a deliberate behavior change invalidates it,
// recompute with the skipped recompute branch below.
const auditGoldenSHA256 = "672538f4169eaeee80650177dbde6eb04cfaf9b878fd335b655c1475e015cbfb"

func TestAuditFaultFreeMatchesGolden(t *testing.T) {
	fp := auditFingerprint(auditAt(t, 4))
	sum := sha256.Sum256([]byte(fp))
	if got := hex.EncodeToString(sum[:]); got != auditGoldenSHA256 {
		t.Fatalf("fault-free audit fingerprint drifted from pre-fault golden:\n got %s\nwant %s\n(fingerprint %d bytes)",
			got, auditGoldenSHA256, len(fp))
	}
}

func faultyAuditAt(t *testing.T, concurrency int, loss float64) *AuditRun {
	t.Helper()
	cfg := tinyAuditConfig(concurrency)
	cfg.Faults = netsim.DefaultFaults(loss)
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestAuditWithFaultsDeterministicAcrossConcurrency: the ISSUE's second
// determinism criterion — with a fixed seed and faults enabled, runs at
// different concurrency widths produce identical AuditRuns including
// the loss/retry/coverage annotations (which the fingerprint includes).
func TestAuditWithFaultsDeterministicAcrossConcurrency(t *testing.T) {
	serial := auditFingerprint(faultyAuditAt(t, 1, 0.15))
	for _, workers := range []int{3, 8} {
		par := auditFingerprint(faultyAuditAt(t, workers, 0.15))
		if par != serial {
			t.Fatalf("faulty audit at concurrency %d diverged from serial:\n--- serial ---\n%s--- %d workers ---\n%s",
				workers, serial, workers, par)
		}
	}
}

// TestAuditWithFaultsAnnotates: fault injection must actually degrade
// something at 15% loss, and the annotations must be self-consistent.
func TestAuditWithFaultsAnnotates(t *testing.T) {
	run := faultyAuditAt(t, 4, 0.15)
	if len(run.Coverage) == 0 {
		t.Fatal("faulty audit produced no coverage annotations")
	}
	if run.LostLandmarks == 0 && run.ProbeFailures == 0 {
		t.Error("15% injected loss produced zero probe failures — faults not reaching the audit")
	}
	sawPartial := false
	for id, c := range run.Coverage {
		if c.Planned < c.Measured || c.Planned != c.Measured+len(c.LostLandmarks) {
			t.Errorf("server %s: inconsistent note %+v", id, c)
		}
		if c.Coverage < 0 || c.Coverage > 1 {
			t.Errorf("server %s: coverage %v out of range", id, c.Coverage)
		}
		switch c.Confidence {
		case measure.ConfidenceFull, measure.ConfidenceDegraded, measure.ConfidenceLow:
		default:
			t.Errorf("server %s: unknown confidence %q", id, c.Confidence)
		}
		if len(c.LostLandmarks) > 0 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no server lost a landmark at 15% loss")
	}
	// The audit must still assess every server (graceful degradation,
	// not abortion): results cover the full fleet.
	if len(run.Results) != len(run.Coverage)+run.MeasureFailures {
		// Coverage notes exist for every server whose measurement
		// returned a result; measure-stage failures have none.
		t.Errorf("results %d != coverage %d + measure failures %d",
			len(run.Results), len(run.Coverage), run.MeasureFailures)
	}
}

// TestAuditFaultFreeHasNoCoverage: the fault-free path must not attach
// annotations (it must not even run the resilient pipeline).
func TestAuditFaultFreeHasNoCoverage(t *testing.T) {
	run := auditAt(t, 4)
	if len(run.Coverage) != 0 {
		t.Fatalf("fault-free audit attached %d coverage notes", len(run.Coverage))
	}
	if run.Retries != 0 || run.ProbeFailures != 0 || run.DegradedServers != 0 {
		t.Errorf("fault-free audit has fault aggregates: %+v", run)
	}
}
