package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"activegeo/internal/assess"
)

var (
	labOnce sync.Once
	labFix  *Lab
	labErr  error
)

func lab(t testing.TB) *Lab {
	t.Helper()
	labOnce.Do(func() {
		labFix, labErr = NewLab(QuickConfig())
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return labFix
}

func TestFig2Calibration(t *testing.T) {
	r, err := lab(t).Fig2Calibration()
	if err != nil {
		t.Fatal(err)
	}
	// Bestline speed must be physical: slower than fiber, and (by CBG++
	// construction the plain CBG bestline is unconstrained below) within
	// a plausible band.
	if r.BestlineSpeed > 200.01 || r.BestlineSpeed < 20 {
		t.Errorf("bestline speed %.1f km/ms implausible", r.BestlineSpeed)
	}
	if r.Points < 20 {
		t.Errorf("too few calibration points: %d", r.Points)
	}
	if r.OctMaxKnots < 2 || r.OctMinKnots < 2 {
		t.Errorf("degenerate octant hulls: %d/%d", r.OctMaxKnots, r.OctMinKnots)
	}
	if r.SpotterMu100 <= 0 || r.SpotterSigma100 <= 0 {
		t.Errorf("bad spotter curves: µ=%f σ=%f", r.SpotterMu100, r.SpotterSigma100)
	}
	if !strings.Contains(r.Render(), "bestline") {
		t.Error("render")
	}
}

func TestFig4ToolValidation(t *testing.T) {
	r, err := lab(t).Fig4ToolValidation()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ratio 1.96 on Linux, R² 0.9942.
	if math.Abs(r.SlopeRatio-2.0) > 0.3 {
		t.Errorf("slope ratio %.2f, want ≈2 (paper 1.96)", r.SlopeRatio)
	}
	if r.R2 < 0.95 {
		t.Errorf("R² = %.4f, want >0.95 (paper 0.9942)", r.R2)
	}
	// CLI measures one trip: its slope should track the one-trip web slope.
	if math.Abs(r.CLISlope-r.OneTripSlope) > 0.3 {
		t.Errorf("CLI slope %.3f far from web one-trip slope %.3f", r.CLISlope, r.OneTripSlope)
	}
	// §4.3's ANOVA: no significant difference between the tools.
	if !math.IsNaN(r.ToolP) && r.ToolP < 0.01 {
		t.Errorf("tool ANOVA p = %.4f — tools significantly different, paper found p = 0.44", r.ToolP)
	}
	if r.SlopeCI95 <= 0 {
		t.Error("missing slope confidence interval")
	}
	if !strings.Contains(r.Render(), "Fig 4") {
		t.Error("render")
	}
}

func TestFig5Windows(t *testing.T) {
	rows, err := lab(t).Fig5Windows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	outliers := 0
	for _, r := range rows {
		// Windows ratio is noisier than Linux (paper: 2.29 vs 1.96) but
		// still identifiable as ≈2.
		if r.SlopeRatio < 1.4 || r.SlopeRatio > 3.2 {
			t.Errorf("%s slope ratio %.2f out of band", r.Browser, r.SlopeRatio)
		}
		outliers += r.HighOutliers
	}
	if outliers == 0 {
		t.Error("no high outliers on Windows (Fig 6 expects them)")
	}
	if !strings.Contains(RenderFig5(rows), "Windows") {
		t.Error("render")
	}
}

func TestFig9AlgorithmComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	rows, err := lab(t).Fig9AlgorithmComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("algorithms = %d", len(rows))
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	cbgRow := byName["CBG"]
	// Headline shape: CBG covers the most hosts…
	for name, r := range byName {
		if name == "CBG" {
			continue
		}
		if r.Coverage > cbgRow.Coverage+0.05 {
			t.Errorf("%s coverage %.2f exceeds CBG %.2f — inverts the paper's Figure 9A", name, r.Coverage, cbgRow.Coverage)
		}
	}
	if cbgRow.Coverage < 0.7 {
		t.Errorf("CBG coverage %.2f, paper has 0.90", cbgRow.Coverage)
	}
	// …because its regions are the largest (Figure 9C): every other
	// algorithm's median region must be smaller.
	for _, name := range []string{"Quasi-Octant", "Spotter", "Hybrid"} {
		if byName[name].AreaMedianFrac > cbgRow.AreaMedianFrac*1.2 {
			t.Errorf("%s median area %.3f larger than CBG %.3f — inverts Figure 9C", name, byName[name].AreaMedianFrac, cbgRow.AreaMedianFrac)
		}
	}
	// Hybrid sits between the strict ring algorithms and CBG (its ±5σ
	// rings are generous), as in the paper where it tracks Quasi-Octant.
	if h := byName["Hybrid"]; h.Coverage < byName["Spotter"].Coverage {
		t.Errorf("Hybrid coverage %.2f below Spotter %.2f", h.Coverage, byName["Spotter"].Coverage)
	}
	if !strings.Contains(RenderFig9(rows), "Fig 9") {
		t.Error("render")
	}
}

func TestFig10EstimateRatios(t *testing.T) {
	r, err := lab(t).Fig10EstimateRatios()
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs < 1000 {
		t.Errorf("pairs = %d", r.Pairs)
	}
	// Baseline essentially never underestimates (physics); bestline
	// rarely does (paper: "a small fraction").
	if r.BaselineUnderFrac > 0.001 {
		t.Errorf("baseline underestimates %.4f of pairs — simulator floor broken?", r.BaselineUnderFrac)
	}
	if r.BestlineUnderFrac > 0.15 {
		t.Errorf("bestline underestimates %.3f — far more than 'a small fraction'", r.BestlineUnderFrac)
	}
	if r.BestlineMedianRatio < 1.0 {
		t.Errorf("median bestline ratio %.2f below 1", r.BestlineMedianRatio)
	}
	if !strings.Contains(r.Render(), "Fig 10") {
		t.Error("render")
	}
}

func TestFig11LandmarkEffectiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).Fig11LandmarkEffectiveness(6)
	if err != nil {
		t.Fatal(err)
	}
	var nearEff, nearTot, farEff, farTot int
	for i, bin := range r.Bins {
		if i < 2 {
			nearEff += bin.Effective
			nearTot += bin.Effective + bin.Ineffective
		} else {
			farEff += bin.Effective
			farTot += bin.Effective + bin.Ineffective
		}
	}
	if nearTot == 0 || farTot == 0 {
		t.Skip("bins too sparse at quick scale")
	}
	nearRate := float64(nearEff) / float64(nearTot)
	farRate := float64(farEff) / float64(farTot)
	if nearRate <= farRate {
		t.Errorf("effective rate near %.2f should exceed far %.2f (Fig 11)", nearRate, farRate)
	}
	// Paper: no correlation between distance and reduction size.
	if math.Abs(r.DistanceReductionCorr) > 0.5 {
		t.Errorf("distance↔reduction correlation %.2f suspiciously strong", r.DistanceReductionCorr)
	}
	if !strings.Contains(r.Render(), "Fig 11") {
		t.Error("render")
	}
}

func TestCBGppCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).CBGppCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if r.Hosts < 30 {
		t.Fatalf("hosts = %d", r.Hosts)
	}
	if r.CBGppMisses > r.CBGMisses {
		t.Errorf("CBG++ missed %d > CBG %d — CBG++ must not be worse", r.CBGppMisses, r.CBGMisses)
	}
	// §5.1 headline: CBG++ eliminates (nearly) all misses.
	if frac := float64(r.CBGppMisses) / float64(r.Hosts); frac > 0.05 {
		t.Errorf("CBG++ missed %.1f%% of hosts; paper reports zero", 100*frac)
	}
	if r.CBGppEmpty > 0 {
		t.Errorf("CBG++ returned %d empty regions; must never", r.CBGppEmpty)
	}
	if !strings.Contains(r.Render(), "§5.1") {
		t.Error("render")
	}
}

func TestFig13Eta(t *testing.T) {
	r, err := lab(t).Fig13Eta()
	if err != nil {
		t.Fatal(err)
	}
	if r.Proxies < 5 {
		t.Fatalf("pingable proxies = %d", r.Proxies)
	}
	if math.Abs(r.Eta-0.5) > 0.06 {
		t.Errorf("η = %.3f, want ≈0.49 (Fig 13)", r.Eta)
	}
	if r.R2 < 0.95 {
		t.Errorf("R² = %.4f, want >0.95", r.R2)
	}
	if !strings.Contains(r.Render(), "η") {
		t.Error("render")
	}
}

func TestFig14Market(t *testing.T) {
	r := lab(t).Fig14Market()
	if len(r.Entries) != 157 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	if !strings.Contains(r.Render(), "provider A") {
		t.Error("render should rank provider A")
	}
}

func TestAuditHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	l := lab(t)
	r, err := l.Fig17Assessment()
	if err != nil {
		t.Fatal(err)
	}
	tl := r.Tally
	if tl.Total() < l.Cfg.FleetTotal-20 {
		t.Fatalf("assessed %d of %d servers", tl.Total(), l.Cfg.FleetTotal)
	}
	// Headline: at least a third of servers are not in their advertised
	// country (definitely false).
	falseFrac := float64(tl.False) / float64(tl.Total())
	if falseFrac < 0.20 || falseFrac > 0.50 {
		t.Errorf("false fraction %.2f, paper ≈ 0.28 (638/2269)", falseFrac)
	}
	credFrac := float64(tl.Credible) / float64(tl.Total())
	if credFrac < 0.25 || credFrac > 0.70 {
		t.Errorf("credible fraction %.2f, paper ≈ 0.44", credFrac)
	}
	// Many false claims are off-continent (paper: 401 of 638).
	if tl.False > 20 && float64(tl.FalseOffContinent) < 0.3*float64(tl.False) {
		t.Errorf("only %d of %d false claims off-continent; paper has 401/638", tl.FalseOffContinent, tl.False)
	}
	// The top claimed countries should be dominated by hosting-friendly
	// countries.
	if len(r.TopProbable) == 0 || len(r.TopClaimed) == 0 {
		t.Fatal("no country breakdowns")
	}
	top := r.TopProbable[0].Country
	if top != "us" && top != "de" && top != "nl" && top != "gb" {
		t.Errorf("top probable country %q, want a major hosting country", top)
	}
	if !strings.Contains(r.Render(), "Fig 17") {
		t.Error("render")
	}
}

func TestAuditAccuracyAgainstGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	l := lab(t)
	run, err := l.Audit()
	if err != nil {
		t.Fatal(err)
	}
	// A false verdict must (almost) never hit a server that actually is
	// in its claimed country: CBG++ regions cover the truth, so a truly
	// honest claim can't be ruled out. Allow a tiny error budget for
	// grid-coarseness at quick scale.
	byID := map[string]string{}
	trueByID := map[string]string{}
	for _, s := range l.Fleet.Servers() {
		byID[string(s.Host.ID)] = s.ClaimedCountry
		trueByID[string(s.Host.ID)] = s.TrueCountry
	}
	wrongFalse := 0
	falseTotal := 0
	for _, r := range run.Results {
		if r.Verdict != assess.False {
			continue
		}
		falseTotal++
		if trueByID[r.ServerID] == r.ClaimedCountry {
			wrongFalse++
		}
	}
	if falseTotal == 0 {
		t.Fatal("no false verdicts at all")
	}
	if frac := float64(wrongFalse) / float64(falseTotal); frac > 0.08 {
		t.Errorf("%.1f%% of false verdicts were actually honest claims (%d/%d)", 100*frac, wrongFalse, falseTotal)
	}
}

func TestFig16Disambiguation(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).Fig16Disambiguation()
	if err != nil {
		t.Fatal(err)
	}
	if r.UncertainBefore == 0 {
		t.Skip("no uncertain verdicts at quick scale")
	}
	if r.ByDataCenters+r.ByGroups == 0 {
		t.Error("disambiguation resolved nothing; paper resolves 353 cases")
	}
	if !strings.Contains(r.Render(), "Fig 15/16") {
		t.Error("render")
	}
}

func TestFig18Honesty(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).Fig18HonestyByCountry()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) == 0 {
		t.Fatal("no cells")
	}
	// Aggregate honesty: F and G (modest claimants) should beat A (the
	// extravagant claimant) — the Figure 18/19 pattern.
	backed := map[string][2]int{}
	for _, c := range r.Cells {
		v := backed[c.Provider]
		v[0] += c.Backed
		v[1] += c.Claimed
		backed[c.Provider] = v
	}
	rate := func(p string) float64 {
		v := backed[p]
		if v[1] == 0 {
			return 0
		}
		return float64(v[0]) / float64(v[1])
	}
	if rate("A") >= rate("G") {
		t.Errorf("provider A honesty %.2f ≥ G %.2f — inverts Figures 18/19", rate("A"), rate("G"))
	}
	if !strings.Contains(r.Render(), "Fig 18/19") {
		t.Error("render")
	}
}

func TestFig20RegionSize(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).Fig20RegionSizeVsLandmark()
	if err != nil {
		t.Skipf("no usable group at quick scale: %v", err)
	}
	if math.Abs(r.Corr) > 0.85 {
		t.Errorf("size↔landmark-distance correlation %.2f; paper reports none", r.Corr)
	}
	if r.MeanAreaKm2 <= 0 {
		t.Error("zero mean area")
	}
	if !strings.Contains(r.Render(), "Fig 20") {
		t.Error("render")
	}
}

func TestFig21Comparison(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	rows, err := lab(t).Fig21Comparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CBGppGenerous < r.CBGppStrict {
			t.Errorf("%s: generous %.2f < strict %.2f", r.Provider, r.CBGppGenerous, r.CBGppStrict)
		}
		// Databases agree more than the strict active verdicts (the §6.2
		// headline) for every provider.
		for name, v := range r.Databases {
			if v < r.CBGppStrict-0.25 {
				t.Errorf("%s: database %s (%.2f) far below CBG++ strict (%.2f) — inverts Fig 21", r.Provider, name, v, r.CBGppStrict)
			}
		}
		if len(r.Databases) != 5 {
			t.Errorf("%s: %d databases", r.Provider, len(r.Databases))
		}
	}
	if !strings.Contains(RenderFig21(rows), "Fig 21") {
		t.Error("render")
	}
}

func TestFig22_23Confusion(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).Fig22_23Confusion()
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal dominance: same-continent confusion should dwarf
	// cross-continent confusion for Europe.
	eu := r.Continents[[2]string{"Europe", "Europe"}]
	if eu == 0 {
		t.Skip("no European confusion at quick scale")
	}
	for _, other := range []string{"Asia", "North America", "Australia"} {
		if cross := r.Continents[[2]string{"Europe", other}]; cross > eu {
			t.Errorf("Europe-%s confusion %d exceeds Europe-Europe %d", other, cross, eu)
		}
	}
	if len(r.Countries) == 0 {
		t.Error("empty country matrix")
	}
	if !strings.Contains(r.Render(), "Fig 22") {
		t.Error("render")
	}
}

func TestLabDeterminism(t *testing.T) {
	// Two labs with the same config must build identical constellations.
	a, err := NewLab(Config{Seed: 7, Anchors: 12, Probes: 4, GridResDeg: 3, FleetTotal: 30, Volunteers: 2, MTurkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLab(Config{Seed: 7, Anchors: 12, Probes: 4, GridResDeg: 3, FleetTotal: 30, Volunteers: 2, MTurkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := a.sortedAnchorIDs(), b.sortedAnchorIDs()
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("anchor IDs differ")
		}
		if a.Cons.Anchors()[i].Host.Loc != b.Cons.Anchors()[i].Host.Loc {
			t.Fatal("anchor locations differ")
		}
	}
}
