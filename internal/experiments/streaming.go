package experiments

import (
	"activegeo/internal/stream"
)

// StreamingAuditor wires a streaming auditor to the lab's constellation,
// client, environment, calibrated CBG++ and telemetry, with the same
// measurement stream seed as the batch Audit (salt 17): every server
// draws identical randomness on either path, so a streaming pass over
// the unchanged fleet reproduces Audit's fingerprint byte for byte.
// batchSize/queueDepth ≤ 0 take the stream package defaults.
func (l *Lab) StreamingAuditor(batchSize, queueDepth int) *stream.Auditor {
	return stream.New(stream.Config{
		Cons:        l.Cons,
		Client:      l.Client,
		Env:         l.Env,
		Mask:        l.Env.Mask,
		Locator:     l.CBGpp,
		Seed:        l.streamSeed(17),
		PolicyFn:    l.policy,
		Adversary:   l.Adversary,
		Concurrency: l.Concurrency(),
		BatchSize:   batchSize,
		QueueDepth:  queueDepth,
		Telemetry:   l.Telemetry,
	})
}

// StreamSource enumerates the lab's fleet for the streaming auditor, in
// the same order the batch audit walks it.
func (l *Lab) StreamSource() *stream.FleetSource {
	return stream.NewFleetSource(l.Fleet)
}
