package experiments

import (
	"fmt"
	"strings"

	"activegeo/internal/assess"
)

// Fingerprint serializes everything observable about an audit run: every
// per-server verdict in fleet order, the failure records, and the
// aggregate tallies. Two runs are "identical" iff their fingerprints are
// byte-equal. The determinism tests pin a golden SHA-256 of this string,
// and the streaming audit's Store.Fingerprint reproduces the same bytes —
// that parity is what certifies the streaming pipeline as a drop-in
// replacement for the materializing one.
func Fingerprint(run *AuditRun) string {
	var b strings.Builder
	for _, r := range run.Results {
		cells := 0
		if r.Region != nil {
			cells = r.Region.Count()
		}
		fmt.Fprintf(&b, "%s|%s|%s|%s|%s|%v|%d", r.ServerID, r.VerdictRaw, r.Verdict,
			r.ContVerdict, r.ProbableCountry, r.Candidates, cells)
		if e, ok := run.Errors[r.ServerID]; ok {
			fmt.Fprintf(&b, "|err:%s:%v", e.Stage, e.Err)
		}
		// Coverage annotations only exist under fault injection, so the
		// fault-free fingerprint is byte-identical to the pre-fault one.
		if c, ok := run.Coverage[r.ServerID]; ok {
			fmt.Fprintf(&b, "|cov:%d/%d:r%d:f%d:lost%v:disc%v:budget%v:%.4f:%s",
				c.Measured, c.Planned, c.Retries, c.ProbeFailures, c.LostLandmarks,
				c.Disconnected, c.BudgetExhausted, c.Coverage, c.Confidence)
		}
		// Adversary annotations only exist when the plan is armed, so
		// the honest fingerprint is byte-identical to the pre-adversary
		// one (the golden-SHA regression pins this).
		if run.AdversaryArmed {
			fmt.Fprintf(&b, "|adv:%v:%.4f:%v",
				r.ManipulationSuspected, r.ManipulationScore, r.ManipulationReasons)
		}
		b.WriteByte('\n')
	}
	t := assess.Tabulate(run.Results)
	fmt.Fprintf(&b, "tally:%d/%d/%d offcont:%d samecont:%d dc:%d group:%d mfail:%d lfail:%d\n",
		t.Credible, t.Uncertain, t.False, t.FalseOffContinent, t.UncertainSameCont,
		run.ReclassifiedByDC, run.ReclassifiedByGroup, run.MeasureFailures, run.LocateFailures)
	if len(run.Coverage) > 0 {
		fmt.Fprintf(&b, "faults: retries:%d probefail:%d lost:%d disc:%d degraded:%d\n",
			run.Retries, run.ProbeFailures, run.LostLandmarks, run.Disconnects, run.DegradedServers)
	}
	if run.AdversaryArmed {
		fmt.Fprintf(&b, "adversary: flagged:%v excluded:%d suspected:%d\n",
			run.FlaggedLandmarks, run.ExcludedMeasurements, run.SuspectedServers)
	}
	return b.String()
}
