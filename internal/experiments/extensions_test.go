package experiments

import (
	"strings"
	"testing"
)

func TestExtRefinement(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).ExtRefinement(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hosts < 3 {
		t.Fatalf("hosts = %d", r.Hosts)
	}
	if r.MeanAreaAfter > r.MeanAreaBefore*1.05 {
		t.Errorf("refinement grew regions: %.0f → %.0f km²", r.MeanAreaBefore, r.MeanAreaAfter)
	}
	// Refinement must not sacrifice correctness.
	if r.StillCovered < r.Hosts-1 {
		t.Errorf("refined regions cover truth for only %d/%d hosts", r.StillCovered, r.Hosts)
	}
	if !strings.Contains(r.Render(), "refinement") {
		t.Error("render")
	}
}

func TestExtCoLocation(t *testing.T) {
	r, err := lab(t).ExtCoLocation("A", 60)
	if err != nil {
		t.Fatal(err)
	}
	if r.Groups == 0 {
		t.Fatal("no co-located groups")
	}
	if r.PureGroups < r.Groups {
		t.Errorf("%d of %d groups mix data centers", r.Groups-r.PureGroups, r.Groups)
	}
	// Provider A lies a lot: some groups must span claimed countries.
	if r.CrossCountryGroups == 0 {
		t.Error("no cross-country co-located groups for provider A")
	}
	if _, err := lab(t).ExtCoLocation("Z", 10); err == nil {
		t.Error("unknown provider should fail")
	}
	if !strings.Contains(r.Render(), "co-location") {
		t.Error("render")
	}
}

func TestExtIndirectError(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).ExtIndirectError(15)
	if err != nil {
		t.Fatal(err)
	}
	if r.Servers < 8 {
		t.Fatalf("servers = %d", r.Servers)
	}
	// Indirect measurement adds noise, so its error should not be
	// dramatically better than direct; and both should be bounded.
	if r.MeanIndirectMissKm > 5000 || r.MeanDirectMissKm > 5000 {
		t.Errorf("implausible centroid errors: direct %.0f, indirect %.0f", r.MeanDirectMissKm, r.MeanIndirectMissKm)
	}
	if r.MeanIndirectMissKm < r.MeanDirectMissKm*0.3 {
		t.Errorf("indirect (%.0f km) dramatically beats direct (%.0f km) — suspicious", r.MeanIndirectMissKm, r.MeanDirectMissKm)
	}
	if !strings.Contains(r.Render(), "indirect") {
		t.Error("render")
	}
}

func TestExtConstellations(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	r, err := lab(t).ExtConstellations()
	if err != nil {
		t.Fatal(err)
	}
	if r.WithinMedianRatio < 1.0 {
		t.Errorf("within-RIPE median ratio %.2f below 1 — bestlines underestimating their own mesh", r.WithinMedianRatio)
	}
	// §8.1's hypothesis: anchors' stable subnets make bestlines
	// overestimate for hosts with worse last miles (Ark-like), while
	// academic nodes (PlanetLab-like) should look similar to anchors.
	ark := r.CrossMedianRatio["ark"]
	pl := r.CrossMedianRatio["planetlab"]
	if ark <= r.WithinMedianRatio {
		t.Errorf("Ark cross ratio %.2f not above within ratio %.2f", ark, r.WithinMedianRatio)
	}
	if pl >= ark {
		t.Errorf("PlanetLab ratio %.2f should be below Ark %.2f (better connectivity)", pl, ark)
	}
	if r.Pairs["ark"] == 0 || r.Pairs["planetlab"] == 0 {
		t.Error("no cross pairs measured")
	}
	if !strings.Contains(r.Render(), "constellations") {
		t.Error("render")
	}
}

func TestExtAdversary(t *testing.T) {
	r, err := lab(t).ExtAdversary()
	if err != nil {
		t.Fatal(err)
	}
	// The attack should move the prediction decisively toward the decoy
	// and away from the truth.
	if r.ForgedCBGppToDecoyKm > 4000 {
		t.Errorf("forged CBG++ centroid %.0f km from decoy — attack failed, paper expects it to work", r.ForgedCBGppToDecoyKm)
	}
	if r.CBGppCoversTruth {
		t.Error("forged region still covers the truth; the §8 threat should displace it")
	}
	if r.HonestMissKm > 3000 {
		t.Errorf("honest baseline centroid %.0f km off", r.HonestMissKm)
	}
	if !strings.Contains(r.Render(), "adversary") {
		t.Error("render")
	}
}
