package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, b *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteFig9CSV(t *testing.T) {
	rows := []Fig9Row{
		{Algorithm: "CBG", Hosts: 60, Coverage: 0.9, MissMedian: 0, MissP90: 100, MissP97: 200, CentroidMedian: 800, AreaMedianFrac: 0.06},
		{Algorithm: "Spotter", Hosts: 60, Coverage: 0.1, MissMedian: 3000, MissP90: 7000, MissP97: 9000, CentroidMedian: 3500, AreaMedianFrac: 0.002},
	}
	var b bytes.Buffer
	if err := WriteFig9CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	parsed := parseCSV(t, &b)
	if len(parsed) != 3 {
		t.Fatalf("rows = %d", len(parsed))
	}
	if parsed[0][0] != "algorithm" || parsed[1][0] != "CBG" || parsed[2][0] != "Spotter" {
		t.Errorf("parsed %v", parsed)
	}
	if parsed[1][2] != "0.9" {
		t.Errorf("coverage cell %q", parsed[1][2])
	}
}

func TestWriteFig5And11CSV(t *testing.T) {
	var b bytes.Buffer
	err := WriteFig5CSV(&b, []Fig5Row{{Browser: "Edge", SlopeRatio: 2.1, HighOutliers: 9, Samples: 160, MeanOutlierMs: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Edge") {
		t.Error("Fig5 CSV missing row")
	}
	b.Reset()
	err = WriteFig11CSV(&b, &Fig11Result{Bins: []Fig11Bin{{MaxDistKm: 1000, Effective: 5, Ineffective: 20, MeanReduction: 1e6}}})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &b)
	if len(rows) != 2 || rows[1][0] != "1000" {
		t.Errorf("Fig11 rows %v", rows)
	}
}

func TestWriteAuditCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy pipeline test: skipped with -short")
	}
	l := lab(t)
	f17, err := l.Fig17Assessment()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteFig17CSV(&b, f17); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &b)
	if len(rows) < 5 {
		t.Fatalf("Fig17 CSV rows = %d", len(rows))
	}

	f18, err := l.Fig18HonestyByCountry()
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := WriteFig18CSV(&b, f18); err != nil {
		t.Fatal(err)
	}
	if len(parseCSV(t, &b)) < 10 {
		t.Error("Fig18 CSV too small")
	}

	f21, err := l.Fig21Comparison()
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := WriteFig21CSV(&b, f21); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &b)
	if len(rows) != 8 { // header + 7 providers
		t.Errorf("Fig21 CSV rows = %d", len(rows))
	}
	if len(rows[0]) != 4+5 {
		t.Errorf("Fig21 CSV columns = %d", len(rows[0]))
	}

	conf, err := l.Fig22_23Confusion()
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := WriteFig22CSV(&b, conf); err != nil {
		t.Fatal(err)
	}
	if len(parseCSV(t, &b)) < 3 {
		t.Error("Fig22 CSV too small")
	}
	b.Reset()
	if err := WriteFig23CSV(&b, conf); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &b)
	// Long-form pairs sorted descending by count.
	prev := 1 << 30
	for _, r := range rows[1:] {
		n, _ := atoi(r[2])
		if n > prev {
			t.Fatal("Fig23 CSV not sorted by count")
		}
		prev = n
	}
}

func atoi(s string) (int, error) {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n, nil
}

func TestCSVName(t *testing.T) {
	if CSVName("fig9") != "fig9.csv" {
		t.Error("CSVName")
	}
}
