package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"

	"activegeo/internal/netsim"
	"activegeo/internal/stream"
)

// streamFingerprintAt builds a fresh tiny lab, runs one streaming pass,
// and returns the store fingerprint plus the pass stats.
func streamFingerprintAt(t *testing.T, concurrency, batchSize, queueDepth int) (string, stream.PassStats) {
	t.Helper()
	lab, err := NewLab(tinyAuditConfig(concurrency))
	if err != nil {
		t.Fatal(err)
	}
	a := lab.StreamingAuditor(batchSize, queueDepth)
	stats, err := a.Sync(context.Background(), lab.StreamSource())
	if err != nil {
		t.Fatal(err)
	}
	return a.Store().Fingerprint(), stats
}

// TestStreamingMatchesBatchAudit: one streaming pass over the unchanged
// tiny fleet must reproduce the batch audit's fingerprint byte for byte.
// Since the batch fingerprint is itself pinned to a golden SHA-256, this
// transitively pins the streaming pipeline.
func TestStreamingMatchesBatchAudit(t *testing.T) {
	batch := auditFingerprint(auditAt(t, 4))
	got, stats := streamFingerprintAt(t, 4, 8, 2)
	if got != batch {
		t.Fatalf("streaming pass diverged from batch audit:\n--- batch ---\n%s--- stream ---\n%s", batch, got)
	}
	if stats.Skipped != 0 || stats.Audited != stats.Total {
		t.Fatalf("first pass over a fresh store must audit everything: %+v", stats)
	}
}

// TestStreamingDeterministicAcrossWidths: fingerprints must be identical
// at any concurrency, batch size and queue depth — scheduling shapes
// wall-clock only.
func TestStreamingDeterministicAcrossWidths(t *testing.T) {
	ref, _ := streamFingerprintAt(t, 1, 1, 1)
	for _, w := range []struct{ conc, batch, queue int }{
		{2, 4, 1}, {8, 8, 2}, {4, 64, 3},
	} {
		got, _ := streamFingerprintAt(t, w.conc, w.batch, w.queue)
		if got != ref {
			t.Fatalf("concurrency=%d batch=%d queue=%d diverged:\n--- serial ---\n%s--- parallel ---\n%s",
				w.conc, w.batch, w.queue, ref, got)
		}
	}
}

// TestStreamingFaultyParity: fingerprint parity must hold with fault
// injection armed too — the resilient sessions draw from the same
// per-server streams on both paths.
func TestStreamingFaultyParity(t *testing.T) {
	cfg := tinyAuditConfig(4)
	cfg.Faults = netsim.DefaultFaults(0.15)

	lab1, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := lab1.Audit()
	if err != nil {
		t.Fatal(err)
	}
	batch := auditFingerprint(run)

	lab2, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := lab2.StreamingAuditor(8, 2)
	if _, err := a.Sync(context.Background(), lab2.StreamSource()); err != nil {
		t.Fatal(err)
	}
	if got := a.Store().Fingerprint(); got != batch {
		t.Fatalf("faulty streaming pass diverged from batch audit:\n--- batch ---\n%s--- stream ---\n%s", batch, got)
	}
}

// TestStreamingIncrementalSkip: a second pass over an unchanged fleet
// re-measures nothing; dirtying exactly k servers' claims re-measures
// exactly those k.
func TestStreamingIncrementalSkip(t *testing.T) {
	lab, err := NewLab(tinyAuditConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	a := lab.StreamingAuditor(8, 2)
	src := lab.StreamSource()
	if _, err := a.Sync(context.Background(), src); err != nil {
		t.Fatal(err)
	}

	second, err := a.Sync(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if second.Audited != 0 || second.Skipped != second.Total {
		t.Fatalf("unchanged fleet must be fully skipped on pass 2: %+v", second)
	}

	// Dirty three servers by changing their advertised claims.
	servers := lab.Fleet.Servers()
	dirty := map[netsim.HostID]bool{}
	for _, i := range []int{0, 7, 23} {
		servers[i].ClaimedCountry = "xx"
		dirty[servers[i].Host.ID] = true
	}
	third, err := a.Sync(context.Background(), stream.NewFleetSource(lab.Fleet))
	if err != nil {
		t.Fatal(err)
	}
	if third.Audited != len(dirty) {
		t.Fatalf("pass 3 audited %d servers, want exactly the %d dirty ones (%+v)", third.Audited, len(dirty), third)
	}
	for id := range dirty {
		if p := a.Store().LastPass(id); p != 3 {
			t.Errorf("dirty server %s last measured in pass %d, want 3", id, p)
		}
	}
	for _, s := range servers {
		if !dirty[s.Host.ID] {
			if p := a.Store().LastPass(s.Host.ID); p == 3 {
				t.Errorf("clean server %s was re-measured in pass 3", s.Host.ID)
			}
		}
	}
}

// TestStreamingChurnStorm: decommission + add anchors *mid-pass* (from
// the between-batches callback). Servers audited before the churn keep
// stale signatures only if their batch formed before the bump — either
// way, after enough passes every signature converges to the new epoch
// and a final pass audits nothing; and every server was re-measured at
// least once after the storm.
func TestStreamingChurnStorm(t *testing.T) {
	lab, err := NewLab(tinyAuditConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var auditor *stream.Auditor
	churned := false
	rng := rand.New(rand.NewSource(99))
	auditor = stream.New(stream.Config{
		Cons:        lab.Cons,
		Client:      lab.Client,
		Env:         lab.Env,
		Mask:        lab.Env.Mask,
		Locator:     lab.CBGpp,
		Seed:        lab.Cfg.Seed*1000003 + 17,
		Concurrency: 4,
		BatchSize:   8,
		QueueDepth:  1,
		OnBatchDone: func(bs stream.BatchStats) {
			// Storm once, in the middle of pass 2.
			if bs.Pass == 2 && bs.Index == 0 && !churned {
				churned = true
				lab.Cons.Decommission(3, rng)
				if _, err := lab.Cons.AddAnchors(3, rng); err != nil {
					t.Errorf("mid-stream AddAnchors: %v", err)
				}
				lab.Cons.RefreshCalibration(2, rng)
			}
		},
	})
	src := lab.StreamSource()
	if _, err := auditor.Sync(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	epochBefore := lab.Cons.Epoch()

	// Pass 2: everything is clean until the storm hits after the first
	// batch; servers skipped before the storm keep pre-storm signatures.
	// To give pass 2 at least one batch, dirty one server's claim.
	lab.Fleet.Servers()[0].ClaimedCountry = "xx"
	if _, err := auditor.Sync(context.Background(), stream.NewFleetSource(lab.Fleet)); err != nil {
		t.Fatal(err)
	}
	if !churned {
		t.Fatal("storm callback never fired")
	}
	if lab.Cons.Epoch() == epochBefore {
		t.Fatal("churn did not advance the constellation epoch")
	}

	// Converge: every server must be re-measured against the post-storm
	// constellation within a few passes, then a quiescent pass audits 0.
	totalReaudited := 0
	var last stream.PassStats
	for i := 0; i < 5; i++ {
		last, err = auditor.Sync(context.Background(), stream.NewFleetSource(lab.Fleet))
		if err != nil {
			t.Fatal(err)
		}
		totalReaudited += last.Audited
		if last.Audited == 0 {
			break
		}
	}
	if last.Audited != 0 {
		t.Fatalf("store did not quiesce after the churn storm: %+v", last)
	}
	if totalReaudited < last.Total {
		t.Fatalf("only %d of %d servers re-measured after the storm", totalReaudited, last.Total)
	}
}

// TestStreamingGoldenSHA: the streaming fingerprint over the tiny fleet
// hashes to the same pinned golden SHA-256 as the batch audit — the
// strongest cross-implementation pin we have.
func TestStreamingGoldenSHA(t *testing.T) {
	got, _ := streamFingerprintAt(t, 4, 16, 2)
	sum := sha256.Sum256([]byte(got))
	if hex.EncodeToString(sum[:]) != auditGoldenSHA256 {
		t.Fatalf("streaming fingerprint sha256 = %s, want golden %s\nfingerprint:\n%s",
			hex.EncodeToString(sum[:]), auditGoldenSHA256, got)
	}
}
