package experiments

import (
	"testing"

	"activegeo/internal/assess"
)

// tinyAuditConfig is a small-but-nontrivial lab for the determinism
// tests: big enough that the audit exercises measurement failures, data
// center groups and reclassification, small enough to run several labs
// per test.
func tinyAuditConfig(concurrency int) Config {
	return Config{
		Seed:        7,
		Anchors:     16,
		Probes:      8,
		GridResDeg:  3,
		FleetTotal:  40,
		Volunteers:  2,
		MTurkers:    4,
		Concurrency: concurrency,
	}
}

// auditFingerprint is the historical test-local name for the (now
// exported) audit fingerprint; see Fingerprint in fingerprint.go.
func auditFingerprint(run *AuditRun) string { return Fingerprint(run) }

func auditAt(t *testing.T, concurrency int) *AuditRun {
	t.Helper()
	lab, err := NewLab(tinyAuditConfig(concurrency))
	if err != nil {
		t.Fatal(err)
	}
	run, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestAuditDeterministicAcrossRuns: two fresh labs with the same seed
// must produce byte-identical audits — the bug this PR fixes was a
// shared sequential RNG that made each server's noise depend on every
// server measured before it.
func TestAuditDeterministicAcrossRuns(t *testing.T) {
	f1 := auditFingerprint(auditAt(t, 4))
	f2 := auditFingerprint(auditAt(t, 4))
	if f1 != f2 {
		t.Fatalf("same seed, same concurrency, different audits:\n--- run 1 ---\n%s--- run 2 ---\n%s", f1, f2)
	}
}

// TestAuditDeterministicAcrossConcurrency: the verdicts must be a pure
// function of the seed — a serial run and parallel runs at different
// widths all agree byte-for-byte.
func TestAuditDeterministicAcrossConcurrency(t *testing.T) {
	serial := auditFingerprint(auditAt(t, 1))
	for _, workers := range []int{2, 8} {
		par := auditFingerprint(auditAt(t, workers))
		if par != serial {
			t.Fatalf("concurrency %d diverged from serial run:\n--- serial ---\n%s--- %d workers ---\n%s",
				workers, serial, workers, par)
		}
	}
}

// TestAuditErrorAccounting: failure records must be consistent with the
// results — every recorded error belongs to a server whose region is
// empty, and the per-stage counters sum to the map size.
func TestAuditErrorAccounting(t *testing.T) {
	run := auditAt(t, 4)
	if got := run.MeasureFailures + run.LocateFailures; got != len(run.Errors) {
		t.Fatalf("failure counters sum to %d but Errors has %d entries", got, len(run.Errors))
	}
	for id, e := range run.Errors {
		if e.Err == nil {
			t.Errorf("server %s: recorded error with nil Err", id)
		}
		if e.Stage != StageMeasure && e.Stage != StageLocate {
			t.Errorf("server %s: unknown stage %q", id, e.Stage)
		}
		r, ok := run.byServer[id]
		if !ok {
			t.Fatalf("server %s has an error record but no result", id)
		}
		if r.Region != nil && !r.Region.Empty() {
			t.Errorf("server %s failed (%s) but has a non-empty region", id, e.Stage)
		}
		if r.VerdictRaw != assess.Uncertain {
			t.Errorf("server %s failed (%s) but raw verdict is %s, want uncertain", id, e.Stage, r.VerdictRaw)
		}
	}
}
