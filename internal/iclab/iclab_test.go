package iclab

import (
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/worldmap"
)

func TestMinDistanceToCountry(t *testing.T) {
	de := worldmap.ByCode("de")
	// Inside Germany → 0.
	if d := MinDistanceToCountryKm(geo.Point{Lat: 52.52, Lon: 13.405}, de); d != 0 {
		t.Errorf("Berlin to Germany = %f, want 0", d)
	}
	// Paris to Germany: a few hundred km.
	d := MinDistanceToCountryKm(geo.Point{Lat: 48.86, Lon: 2.35}, de)
	if d < 10 || d > 600 {
		t.Errorf("Paris to Germany = %f km", d)
	}
	// New York to Germany: thousands of km.
	d = MinDistanceToCountryKm(geo.Point{Lat: 40.71, Lon: -74.01}, de)
	if d < 4000 {
		t.Errorf("New York to Germany = %f km", d)
	}
}

func TestCheckAcceptsTruthfulClaim(t *testing.T) {
	// A server actually in Germany, measured from Frankfurt and Paris
	// with plausible RTTs.
	ms := []geoloc.Measurement{
		{LandmarkID: "fra", Landmark: geo.Point{Lat: 50.11, Lon: 8.68}, RTTms: 12},
		{LandmarkID: "par", Landmark: geo.Point{Lat: 48.86, Lon: 2.35}, RTTms: 22},
	}
	var c Checker
	v, err := c.Check("de", ms)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Errorf("truthful claim rejected: %+v", v)
	}
}

func TestCheckRejectsImpossibleClaim(t *testing.T) {
	// Claimed North Korea, but a Frankfurt landmark sees a 10 ms RTT:
	// a packet would have had to cross ~8000 km in 5 ms (1600 km/ms).
	ms := []geoloc.Measurement{
		{LandmarkID: "fra", Landmark: geo.Point{Lat: 50.11, Lon: 8.68}, RTTms: 10},
	}
	var c Checker
	v, err := c.Check("kp", ms)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted {
		t.Errorf("impossible claim accepted: %+v", v)
	}
	if v.Violations != 1 {
		t.Errorf("violations = %d", v.Violations)
	}
	if v.MaxRequiredSpeed < SpeedLimitKmPerMs {
		t.Errorf("required speed %f should exceed the limit", v.MaxRequiredSpeed)
	}
}

func TestCheckBoundarySpeed(t *testing.T) {
	// Construct a measurement requiring a speed just under the limit.
	landmark := geo.Point{Lat: 48.86, Lon: 2.35} // Paris
	de := worldmap.ByCode("de")
	dist := MinDistanceToCountryKm(landmark, de)
	oneWay := dist / (SpeedLimitKmPerMs * 0.99)
	ms := []geoloc.Measurement{{LandmarkID: "x", Landmark: landmark, RTTms: 2 * oneWay}}
	var c Checker
	v, err := c.Check("de", ms)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Errorf("speed just under the limit should be accepted: %+v", v)
	}
	// And just over.
	ms[0].RTTms = 2 * dist / (SpeedLimitKmPerMs * 1.01)
	v, err = c.Check("de", ms)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted {
		t.Errorf("speed just over the limit should be rejected: %+v", v)
	}
}

func TestCheckCustomLimit(t *testing.T) {
	ms := []geoloc.Measurement{
		{LandmarkID: "fra", Landmark: geo.Point{Lat: 50.11, Lon: 8.68}, RTTms: 60},
	}
	strict := Checker{Limit: 1} // 1 km/ms: almost everything fails
	v, err := strict.Check("us", ms)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted {
		t.Error("strict limit should reject")
	}
}

func TestCheckErrors(t *testing.T) {
	var c Checker
	if _, err := c.Check("zz", []geoloc.Measurement{{RTTms: 1}}); err == nil {
		t.Error("unknown country should error")
	}
	if _, err := c.Check("de", nil); err != geoloc.ErrNoMeasurements {
		t.Errorf("err = %v", err)
	}
}

func TestZeroDelayMeasurementIgnored(t *testing.T) {
	ms := []geoloc.Measurement{
		{LandmarkID: "a", Landmark: geo.Point{Lat: 50.11, Lon: 8.68}, RTTms: 0},
	}
	var c Checker
	v, err := c.Check("us", ms)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.MaxRequiredSpeed != 0 {
		t.Errorf("zero-delay measurement should be skipped: %+v", v)
	}
}
