// Package iclab reimplements ICLab's geolocation checker (§6.2): a
// falsification-only test. Given a country a host claims to be in and a
// set of round-trip measurements, it computes — for each landmark — the
// minimum distance between the landmark and the claimed country, and the
// speed a packet would have needed to cover that distance in the
// observed one-way time. The claim is accepted only if no packet had to
// travel faster than the speed limit (153 km/ms, slightly above the
// "speed of internet" of Katz-Bassett et al.).
package iclab

import (
	"math"

	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/worldmap"
)

// SpeedLimitKmPerMs is ICLab's configured packet speed limit.
const SpeedLimitKmPerMs = geo.ICLabSpeedKmPerMs

// Checker validates country claims against measurements.
type Checker struct {
	// Limit defaults to SpeedLimitKmPerMs when zero.
	Limit float64
}

// limit returns the effective speed limit.
func (c *Checker) limit() float64 {
	if c.Limit > 0 {
		return c.Limit
	}
	return SpeedLimitKmPerMs
}

// MinDistanceToCountryKm returns the minimum great-circle distance from
// p to any point of the country's territory (0 if p is inside).
func MinDistanceToCountryKm(p geo.Point, country *worldmap.Country) float64 {
	best := math.Inf(1)
	for _, cap := range country.Shapes {
		d := geo.DistanceKm(p, cap.Center) - cap.RadiusKm
		if d < 0 {
			return 0
		}
		if d < best {
			best = d
		}
	}
	return best
}

// Verdict is the result of a claim check.
type Verdict struct {
	Accepted bool
	// MaxRequiredSpeed is the fastest speed any packet would have needed
	// (km/ms); the claim is rejected when it exceeds the limit.
	MaxRequiredSpeed float64
	// Violations counts measurements that individually exceed the limit.
	Violations int
}

// Check tests whether the measurements are consistent with the target
// being anywhere inside the claimed country.
func (c *Checker) Check(claimedCountry string, ms []geoloc.Measurement) (Verdict, error) {
	country := worldmap.ByCode(claimedCountry)
	if country == nil {
		return Verdict{}, errUnknownCountry(claimedCountry)
	}
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return Verdict{}, geoloc.ErrNoMeasurements
	}
	v := Verdict{Accepted: true}
	for _, m := range ms {
		minDist := MinDistanceToCountryKm(m.Landmark, country)
		t := m.OneWayMs()
		if t <= 0 {
			continue
		}
		speed := minDist / t
		if speed > v.MaxRequiredSpeed {
			v.MaxRequiredSpeed = speed
		}
		if speed > c.limit() {
			v.Accepted = false
			v.Violations++
		}
	}
	return v, nil
}

type errUnknownCountry string

func (e errUnknownCountry) Error() string {
	return "iclab: unknown country code " + string(e)
}
