package atlasd

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/netsim"
)

// The fuzz fixture is deliberately tiny — fuzzing throughput matters
// more than landmark realism — and shared by all three targets. The
// server is safe for concurrent use, and fuzz workers run in separate
// processes anyway, so one per process is enough.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzMux  http.Handler
	fuzzID   string // one known-good landmark id
)

func fuzzServer() (http.Handler, *Server) {
	fuzzOnce.Do(func() {
		net := netsim.New(7)
		rng := rand.New(rand.NewSource(7))
		cons, err := atlas.Build(net, atlas.Config{Anchors: 12, Probes: 8, SamplesPerPair: 2}, rng)
		if err != nil {
			panic(err)
		}
		fuzzSrv = NewServer(cons, Config{Seed: 7, Opts: cbg.Options{Slowline: true}})
		fuzzMux = fuzzSrv.Handler()
		fuzzID = string(cons.All()[0].Host.ID)
	})
	return fuzzMux, fuzzSrv
}

// serveRaw drives the full middleware-wrapped handler tree with a
// hand-built request, bypassing http.NewRequest's URL validation so
// the fuzzer can reach the handlers with inputs a hostile client could
// send down a raw socket.
func serveRaw(h http.Handler, method, path, rawQuery string, body []byte) *httptest.ResponseRecorder {
	req := &http.Request{
		Method: method,
		URL:    &url.URL{Path: path, RawQuery: rawQuery},
		Header: make(http.Header),
	}
	if body != nil {
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// FuzzPhase2Query throws arbitrary continent/n/draw query strings at
// /v1/landmarks/phase2. Invariants: the handler never panics, answers
// only 200/400/404, any 200 body is well-formed JSON whose landmarks
// all belong to the requested continent, and the response is a pure
// function of the query — replaying the same request yields the same
// bytes.
func FuzzPhase2Query(f *testing.F) {
	f.Add("Europe", "5", "client-a|1")
	f.Add("Europe", "1", "")
	f.Add("Atlantis", "5", "x")         // unknown continent
	f.Add("", "5", "x")                 // missing continent
	f.Add("Europe", "-3", "x")          // n < 0
	f.Add("Europe", "0", "x")           // n below range
	f.Add("Europe", "501", "x")         // n above range
	f.Add("Europe", "fifty", "x")       // non-numeric n
	f.Add("Europe", "5;drop", "draw=1") // query metacharacters
	f.Add("North America", "25", "\x00\xff")

	h, _ := fuzzServer()
	f.Fuzz(func(t *testing.T, continent, n, draw string) {
		q := url.Values{}
		if continent != "" {
			q.Set("continent", continent)
		}
		if n != "" {
			q.Set("n", n)
		}
		if draw != "" {
			q.Set("draw", draw)
		}
		rec := serveRaw(h, http.MethodGet, "/v1/landmarks/phase2", q.Encode(), nil)
		switch rec.Code {
		case http.StatusOK:
			var out []LandmarkInfo
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("200 with malformed body: %v", err)
			}
			if len(out) == 0 {
				t.Fatal("200 with zero landmarks")
			}
			for _, lm := range out {
				if lm.ID == "" || math.IsNaN(lm.Lat) || math.IsNaN(lm.Lon) {
					t.Fatalf("bad landmark in 200 response: %+v", lm)
				}
			}
		case http.StatusBadRequest, http.StatusNotFound:
			// rejected — fine
		default:
			t.Fatalf("unexpected status %d for %q", rec.Code, q.Encode())
		}
		again := serveRaw(h, http.MethodGet, "/v1/landmarks/phase2", q.Encode(), nil)
		if !bytes.Equal(rec.Body.Bytes(), again.Body.Bytes()) {
			t.Fatalf("replaying %q changed the response", q.Encode())
		}
	})
}

// FuzzModelPath throws arbitrary landmark ids at /v1/model/. 200 means
// a finite, positive-slope model for exactly the requested id; anything
// else must be a clean 400/404 (or the mux's 301 path canonicalisation
// for ids with embedded slashes/dots), never a panic or a 500.
func FuzzModelPath(f *testing.F) {
	h, srv := fuzzServer()
	f.Add(fuzzID)
	f.Add("")
	f.Add("no-such-landmark")
	f.Add("../../etc/passwd")
	f.Add(fuzzID + "/extra")
	f.Add("a\x00b")
	f.Add("..")

	f.Fuzz(func(t *testing.T, id string) {
		rec := serveRaw(h, http.MethodGet, "/v1/model/"+id, "", nil)
		switch rec.Code {
		case http.StatusOK:
			var m ModelInfo
			if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
				t.Fatalf("200 with malformed body: %v", err)
			}
			if m.LandmarkID != id {
				t.Fatalf("asked for %q, got model for %q", id, m.LandmarkID)
			}
			if !(m.SlopeMsPerKm > 0) || math.IsNaN(m.InterceptMs) || math.IsInf(m.InterceptMs, 0) {
				t.Fatalf("degenerate model: %+v", m)
			}
			if m.Epoch != srv.Epoch() {
				t.Fatalf("model from epoch %d, server at %d", m.Epoch, srv.Epoch())
			}
		case http.StatusBadRequest, http.StatusNotFound, http.StatusMovedPermanently:
			// rejected or path-canonicalised — fine
		default:
			t.Fatalf("unexpected status %d for id %q", rec.Code, id)
		}
	})
}

// FuzzReportDecode throws arbitrary bodies at POST /v1/report. The
// server must answer 202 or 400 without panicking, and the ledger may
// only grow on 202 — a rejected body never leaves partial state.
func FuzzReportDecode(f *testing.F) {
	h, srv := fuzzServer()
	good := func(seq int64) []byte {
		rep := Report{
			Client: "fuzz-client",
			Seq:    seq,
			Samples: []ReportSample{
				{LandmarkID: fuzzID, RTTms: 42.5},
			},
		}
		b, err := json.Marshal(rep)
		if err != nil {
			panic(err)
		}
		return b
	}
	f.Add(good(1))
	f.Add(good(0))
	f.Add([]byte(`{"client":"c","seq":-1,"samples":[{"landmark_id":"` + fuzzID + `","rtt_ms":1}]}`))     // negative seq
	f.Add([]byte(`{"client":"c","samples":[{"landmark_id":"nope","rtt_ms":1}]}`))                        // unknown landmark
	f.Add([]byte(`{"client":"c","samples":[{"landmark_id":"` + fuzzID + `","rtt_ms":-3}]}`))             // non-positive RTT
	f.Add([]byte(`{"client":"c","samples":[]}`))                                                         // no samples
	f.Add([]byte(`{"client":"c","samples":[{"landmark_id":"` + fuzzID + `","rtt_ms":1}`))                // truncated JSON
	f.Add([]byte(`{"client":"c","client":"d","samples":[{"landmark_id":"` + fuzzID + `","rtt_ms":1}]}`)) // duplicate field
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\x01\x02"))

	f.Fuzz(func(t *testing.T, body []byte) {
		before := len(srv.Reports())
		rec := serveRaw(h, http.MethodPost, "/v1/report", "", body)
		after := len(srv.Reports())
		switch rec.Code {
		case http.StatusAccepted:
			var receipt map[string]int
			if err := json.Unmarshal(rec.Body.Bytes(), &receipt); err != nil {
				t.Fatalf("202 with malformed receipt: %v", err)
			}
			if receipt["accepted"] < 1 {
				t.Fatalf("202 accepting %d samples", receipt["accepted"])
			}
			// after == before is legal: an idempotent duplicate receipt.
			if after < before || after > before+1 {
				t.Fatalf("ledger went %d -> %d on one upload", before, after)
			}
		case http.StatusBadRequest:
			if after != before {
				t.Fatalf("rejected body still grew the ledger: %d -> %d", before, after)
			}
		default:
			t.Fatalf("unexpected status %d for %q", rec.Code, body)
		}
	})
}
