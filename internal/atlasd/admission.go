package atlasd

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// statusRecorder captures the response status for counters and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// drainGate tracks in-flight measurement-path requests and the
// draining flag under one mutex, so "enter unless draining" and
// "drain waits for everyone who entered" are a single atomic protocol:
// a request either increments the in-flight count before draining is
// set — and drain waits for it — or it observes draining and is
// rejected before touching any server state.
type drainGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	draining bool
}

func newDrainGate() *drainGate {
	g := &drainGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter admits the caller unless the gate is draining. Every true
// return must be paired with exit.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

func (g *drainGate) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (g *drainGate) beginDrain() {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
}

func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// waitIdle blocks until no admitted request is in flight.
func (g *drainGate) waitIdle() {
	g.mu.Lock()
	for g.inflight > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// instrument wraps one endpoint handler with the server's operational
// layers, outermost first:
//
//  1. drain gating — once BeginShutdown has been called, new
//     measurement-path work is refused with 503 + Retry-After, while
//     requests admitted before the drain hold the gate open until
//     they finish (so every accepted /v1/report batch is ledgered
//     before Drain returns);
//  2. bounded admission — at most MaxInflight measurement-path
//     requests run concurrently; excess load is shed immediately with
//     429 + Retry-After rather than queued without bound;
//  3. observability — per-endpoint request/error/shed counters,
//     a latency distribution, and an access-log line.
//
// Ops endpoints (healthz, metrics) pass admitted=false: they bypass
// the gate and the semaphore so the server stays observable while
// shedding or draining.
func (s *Server) instrument(name string, admitted bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.tel.Add("atlasd."+name+".requests", 1)
		if admitted {
			if !s.gate.enter() {
				s.tel.Add("atlasd."+name+".drain_rejects", 1)
				w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
				httpError(w, http.StatusServiceUnavailable, "draining")
				return
			}
			defer s.gate.exit()
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.tel.Add("atlasd."+name+".shed", 1)
				w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
				httpError(w, http.StatusTooManyRequests, "overloaded")
				return
			}
		}

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		latMs := float64(time.Since(start).Microseconds()) / 1000
		s.tel.Observe("atlasd."+name+".latency_ms", latMs)
		if rec.status >= 400 {
			s.tel.Add("atlasd."+name+".errors", 1)
		}
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("%s %s %d %.3fms", r.Method, r.URL.RequestURI(), rec.status, latMs)
		}
	}
}

// BeginShutdown puts the server into draining mode: measurement-path
// requests are rejected with 503 from now on, while healthz and
// metrics keep answering (healthz reports "draining").
func (s *Server) BeginShutdown() { s.gate.beginDrain() }

// Draining reports whether BeginShutdown has been called.
func (s *Server) Draining() bool { return s.gate.isDraining() }

// Drain begins shutdown (if not already begun) and blocks until every
// in-flight measurement-path request has finished or ctx expires.
// After a nil return, every report the server ever accepted with 202
// is in the ledger and no measurement-path handler is running.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginShutdown()
	done := make(chan struct{})
	go func() {
		s.gate.waitIdle()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
