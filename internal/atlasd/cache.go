package atlasd

import (
	"sync"

	"activegeo/internal/geo"
	"activegeo/internal/mathx"
)

// pooledKey is the reserved cache key for the pooled fallback bestline.
// Host IDs never contain a newline, so it cannot collide with a real
// landmark.
const pooledKey = "\npooled"

// CacheStats counts model-cache traffic since the last epoch reset.
type CacheStats struct {
	// Fits is the number of bestline fits actually executed.
	Fits int64 `json:"fits"`
	// Hits served a previously fitted model without refitting.
	Hits int64 `json:"hits"`
	// Misses found no cached model and started (or joined) a fit.
	Misses int64 `json:"misses"`
	// Coalesced is the subset of misses that joined a fit already in
	// flight instead of starting their own — the singleflight win.
	Coalesced int64 `json:"coalesced"`
}

// fitCall is one in-flight (or completed) fit that concurrent callers
// share: the first requester runs the fit, everyone else waits on done.
type fitCall struct {
	done chan struct{}
	val  ModelInfo
	err  error
}

// modelCache is the per-epoch, singleflight bestline cache. The §4.1
// server refits each landmark's delay-distance model once per epoch
// ("updates a delay-distance model for each landmark … every day");
// under concurrent clients the cache guarantees exactly one fit per
// landmark per epoch, with every concurrent requester coalescing onto
// the same computation.
type modelCache struct {
	fit func(id string) (ModelInfo, error)

	mu    sync.Mutex
	calls map[string]*fitCall
	stats CacheStats
}

func newModelCache(fit func(id string) (ModelInfo, error)) *modelCache {
	return &modelCache{fit: fit, calls: make(map[string]*fitCall)}
}

// get returns the landmark's model, fitting it at most once per epoch.
func (c *modelCache) get(id string) (ModelInfo, error) {
	c.mu.Lock()
	if call, ok := c.calls[id]; ok {
		select {
		case <-call.done:
			c.stats.Hits++
		default:
			c.stats.Misses++
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-call.done
		return call.val, call.err
	}
	call := &fitCall{done: make(chan struct{})}
	c.calls[id] = call
	c.stats.Misses++
	c.stats.Fits++
	c.mu.Unlock()

	// The fit runs outside the lock: other landmarks fit concurrently,
	// only same-landmark requests coalesce.
	call.val, call.err = c.fit(id)
	close(call.done)
	if call.err != nil {
		// Do not cache failures across the epoch: a failed fit (e.g. a
		// transient data problem) is retried by the next requester.
		c.mu.Lock()
		if c.calls[id] == call {
			delete(c.calls, id)
		}
		c.mu.Unlock()
	}
	return call.val, call.err
}

// reset drops every cached fit, starting a new epoch. Fits in flight
// finish and are returned to their waiters, but no longer populate the
// cache.
func (c *modelCache) reset() {
	c.mu.Lock()
	c.calls = make(map[string]*fitCall)
	c.stats = CacheStats{}
	c.mu.Unlock()
}

// Stats returns a copy of the traffic counters.
func (c *modelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// oneWay converts (distance, RTT) calibration samples to the
// (distance, one-way ms) form cbg.BestLine consumes.
func oneWay(pts []mathx.XY) []mathx.XY {
	out := make([]mathx.XY, len(pts))
	for i, p := range pts {
		out[i] = mathx.XY{X: p.X, Y: geo.OneWayMs(p.Y)}
	}
	return out
}
