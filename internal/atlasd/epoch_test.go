package atlasd

import (
	"context"
	"errors"
	"net/http"
	"net/url"
	"testing"
	"time"
)

func landmark0(t *testing.T) string {
	t.Helper()
	return string(testCons().All()[0].Host.ID)
}

// TestEpochBarrierFlow walks the happy path over HTTP: status →
// prepare (fenced) → commit (flipped, unfenced), with the model epoch
// stamp following.
func TestEpochBarrierFlow(t *testing.T) {
	ts, _ := testServerCfg(t, Config{Seed: 31, Opts: cbgOptions(), ShardName: "s-test"})
	c := client(ts)
	ctx := context.Background()

	info, err := c.EpochStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 0 || info.Fenced || info.Shard != "s-test" {
		t.Fatalf("initial status %+v", info)
	}

	m0, err := c.Model(ctx, landmark0(t))
	if err != nil {
		t.Fatal(err)
	}
	if m0.Epoch != 0 {
		t.Fatalf("model epoch %d before any barrier", m0.Epoch)
	}

	if err := c.EpochPrepare(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if info, _ = c.EpochStatus(ctx); !info.Fenced || info.Epoch != 0 {
		t.Fatalf("after prepare: %+v", info)
	}
	// Re-prepare of the same target is idempotent.
	if err := c.EpochPrepare(ctx, 1); err != nil {
		t.Fatalf("re-prepare: %v", err)
	}

	if err := c.EpochCommit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if info, _ = c.EpochStatus(ctx); info.Fenced || info.Epoch != 1 {
		t.Fatalf("after commit: %+v", info)
	}
	m1, err := c.Model(ctx, landmark0(t))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Epoch != 1 {
		t.Fatalf("model epoch %d after commit to 1", m1.Epoch)
	}
	// The refitted line is identical — the fit is a pure function of the
	// mesh, which is what lets the transcript hash exclude the epoch.
	if m1.SlopeMsPerKm != m0.SlopeMsPerKm || m1.InterceptMs != m0.InterceptMs {
		t.Errorf("refit changed the model: %+v vs %+v", m1, m0)
	}
}

// TestEpochConflicts: transitions that do not apply to the shard's
// state are 409s, and leave it unchanged.
func TestEpochConflicts(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()

	conflict := func(err error) {
		t.Helper()
		var he *HTTPError
		if !errors.As(err, &he) || he.Status != http.StatusConflict {
			t.Fatalf("want 409 conflict, got %v", err)
		}
	}
	// Prepare must target cur+1.
	conflict(c.EpochPrepare(ctx, 2))
	// Commit without a fence.
	conflict(c.EpochCommit(ctx, 1))
	// Prepare for 1, then a conflicting prepare for another target.
	if err := c.EpochPrepare(ctx, 1); err != nil {
		t.Fatal(err)
	}
	conflict(c.EpochPrepare(ctx, 2))
	// Commit for the wrong target.
	conflict(c.EpochCommit(ctx, 2))
	// Abort is idempotent and releases the fence.
	if err := c.EpochAbort(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.EpochAbort(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 0 || srv.egate.isFenced() {
		t.Fatalf("epoch %d fenced=%t after aborted barrier", srv.Epoch(), srv.egate.isFenced())
	}
}

// TestEpochSync: a joining shard jumps straight to the fleet epoch,
// clearing any stale fence.
func TestEpochSync(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()
	if err := c.EpochPrepare(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.EpochSync(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 7 || srv.egate.isFenced() {
		t.Fatalf("epoch %d fenced=%t after sync", srv.Epoch(), srv.egate.isFenced())
	}
}

// TestFenceBlocksModelsUntilCommit: a prepared fence holds model
// requests; they complete — in the new epoch — once the commit lands.
func TestFenceBlocksModelsUntilCommit(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	ctx := context.Background()
	if err := c.EpochPrepare(ctx, 1); err != nil {
		t.Fatal(err)
	}

	got := make(chan *ModelInfo, 1)
	errc := make(chan error, 1)
	go func() {
		m, err := c.Model(ctx, landmark0(t))
		if err != nil {
			errc <- err
			return
		}
		got <- m
	}()

	select {
	case m := <-got:
		t.Fatalf("model served through a raised fence: %+v", m)
	case err := <-errc:
		t.Fatalf("model errored under fence: %v", err)
	case <-time.After(50 * time.Millisecond):
		// still blocked — correct
	}
	if err := c.EpochCommit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Epoch != 1 {
			t.Fatalf("fence-released model at epoch %d, want 1", m.Epoch)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("model still blocked after commit")
	}
}

// TestFenceTTLAutoAborts: a fence whose controller never commits drops
// after FenceTTL, so a crashed controller cannot wedge model serving.
func TestFenceTTLAutoAborts(t *testing.T) {
	ts, srv := testServerCfg(t, Config{Seed: 31, Opts: cbgOptions(), FenceTTL: 30 * time.Millisecond})
	c := client(ts)
	ctx := context.Background()
	if err := c.EpochPrepare(ctx, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.egate.isFenced() {
		if time.Now().After(deadline) {
			t.Fatal("fence never auto-aborted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Epoch() != 0 {
		t.Fatalf("epoch advanced to %d by an abandoned fence", srv.Epoch())
	}
	if _, err := c.Model(ctx, landmark0(t)); err != nil {
		t.Fatalf("model blocked after TTL abort: %v", err)
	}
	// The late commit finds no fence: 409, not a silent flip.
	var he *HTTPError
	if err := c.EpochCommit(ctx, 1); !errors.As(err, &he) || he.Status != http.StatusConflict {
		t.Fatalf("late commit: %v", err)
	}
}

// TestLedgerAndDrainEndpoints: /v1/reports hands the ledger over and
// POST /v1/drain drains, both still answering on a draining shard.
func TestLedgerAndDrainEndpoints(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	ctx := context.Background()
	rep := Report{
		Client:  "ledger-client",
		Seq:     3,
		Samples: []ReportSample{{LandmarkID: landmark0(t), RTTms: 9}},
	}
	if err := c.Upload(ctx, rep); err != nil {
		t.Fatal(err)
	}
	n, err := c.DrainServer(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("drain reported %d ledgered, want 1", n)
	}
	// Harvest still works after the drain; the measurement path is 503.
	reports, err := c.Ledger(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Client != "ledger-client" || reports[0].Seq != 3 {
		t.Fatalf("harvest %+v", reports)
	}
	var he *HTTPError
	if err := c.Upload(ctx, rep); !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("upload on drained shard: %v", err)
	}
	info, err := c.EpochStatus(ctx)
	if err != nil || info == nil {
		t.Fatalf("epoch status on drained shard: %v", err)
	}
}

// TestModelNotOwnedCounter: a shard serves models it does not own (the
// answer is identical everywhere) but counts the off-partition traffic.
func TestModelNotOwnedCounter(t *testing.T) {
	ts, srv := testServerCfg(t, Config{
		Seed: 31, Opts: cbgOptions(),
		Owns: func(id string) bool { return false },
	})
	c := client(ts)
	if _, err := c.Model(context.Background(), landmark0(t)); err != nil {
		t.Fatal(err)
	}
	if m := srv.Metrics(); m.ModelNotOwned != 1 {
		t.Errorf("ModelNotOwned = %d, want 1", m.ModelNotOwned)
	}
}

// TestRetrySingle503Terminal pins the single-server semantics the
// failover fix must not change: against one target, 503 stays terminal.
func TestRetrySingle503Terminal(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 10, func() error {
		calls++
		return &HTTPError{Status: http.StatusServiceUnavailable, Msg: "draining"}
	})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("got %v", err)
	}
	if calls != 1 {
		t.Fatalf("503 retried %d times against a single server", calls)
	}
}

// TestRetryChainFailover is the regression test for the constellation
// failover fix: a 503 moves to the next ring successor instead of
// killing the campaign, and only when no successor remains is it
// terminal again.
func TestRetryChainFailover(t *testing.T) {
	ctx := context.Background()
	unavailable := func() error {
		return &HTTPError{Status: http.StatusServiceUnavailable, Msg: "draining"}
	}

	// 503 on the first target fails over; the second answers.
	second := 0
	err := RetryChain(ctx, 10, unavailable, func() error { second++; return nil })
	if err != nil || second != 1 {
		t.Fatalf("chain did not fail over: err=%v second=%d", err, second)
	}

	// Transport-level failure fails over too.
	second = 0
	transportErr := func() error { return &url.Error{Op: "Get", URL: "http://s0", Err: errors.New("connection refused")} }
	if err := RetryChain(ctx, 10, transportErr, func() error { second++; return nil }); err != nil || second != 1 {
		t.Fatalf("transport error did not fail over: err=%v second=%d", err, second)
	}

	// Every successor 503ing is terminal with the last error.
	var he *HTTPError
	if err := RetryChain(ctx, 10, unavailable, unavailable, unavailable); !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhausted chain: %v", err)
	}

	// Semantic rejections do not fail over: every shard would say the
	// same thing.
	second = 0
	badReq := func() error { return &HTTPError{Status: http.StatusBadRequest, Msg: "no"} }
	if err := RetryChain(ctx, 10, badReq, func() error { second++; return nil }); second != 0 {
		t.Fatalf("400 failed over: err=%v", err)
	}

	// 429 is retried on the same target, not failed over.
	calls, second := 0, 0
	shedThenOK := func() error {
		calls++
		if calls < 3 {
			return &HTTPError{Status: http.StatusTooManyRequests, Msg: "shed"}
		}
		return nil
	}
	if err := RetryChain(ctx, 10, shedThenOK, func() error { second++; return nil }); err != nil || second != 0 || calls != 3 {
		t.Fatalf("shed handling: err=%v calls=%d second=%d", err, calls, second)
	}

	// Context expiry is the caller's deadline, not the shard's fault.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	second = 0
	if err := RetryChain(cctx, 10, func() error { return cctx.Err() }, func() error { second++; return nil }); second != 0 {
		t.Fatalf("context error failed over: %v", err)
	}
}

// TestFailoverClassifier pins the classifier table directly.
func TestFailoverClassifier(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&HTTPError{Status: http.StatusServiceUnavailable}, true},
		{&HTTPError{Status: http.StatusTooManyRequests}, false},
		{&HTTPError{Status: http.StatusBadRequest}, false},
		{&HTTPError{Status: http.StatusConflict}, false},
		{&url.Error{Op: "Get", URL: "x", Err: errors.New("refused")}, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("other"), false},
	}
	for _, tc := range cases {
		if got := Failover(tc.err); got != tc.want {
			t.Errorf("Failover(%v) = %t, want %t", tc.err, got, tc.want)
		}
	}
}
