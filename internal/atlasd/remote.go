package atlasd

import (
	"context"
	"fmt"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

// RemoteTwoPhase runs the §4.1 two-phase procedure the way the paper's
// tools actually ran it: landmark sets come from the coordination server
// over HTTP, measurements are taken locally with the given tool, and the
// results are reported back.
//
// The landmark resolver maps a served LandmarkInfo to the measurement
// target; in the simulated world that is a netsim host ID, on a real
// network it would be the addr. Measurement failures skip the landmark,
// like the real tool.
func RemoteTwoPhase(ctx context.Context, c *Client, tool measure.Tool, from netsim.HostID, secondPhase int, rng *rand.Rand) (*measure.Result, error) {
	if secondPhase < 1 {
		secondPhase = 25
	}
	p1, err := c.Phase1Landmarks(ctx)
	if err != nil {
		return nil, fmt.Errorf("atlasd: phase 1 landmarks: %w", err)
	}
	res := &measure.Result{}
	bestRTT := -1.0
	bestCont := ""
	for _, info := range p1 {
		s, err := measureInfo(tool, from, info, rng)
		if err != nil {
			continue
		}
		res.Phase1 = append(res.Phase1, s)
		if bestRTT < 0 || s.RTTms < bestRTT {
			bestRTT, bestCont = s.RTTms, info.Continent
		}
	}
	if len(res.Phase1) == 0 {
		return nil, measure.ErrNoLandmarks
	}
	res.Continent = continentValue(bestCont)

	p2, err := c.Phase2Landmarks(ctx, bestCont, secondPhase)
	if err != nil {
		return nil, fmt.Errorf("atlasd: phase 2 landmarks: %w", err)
	}
	for _, info := range p2 {
		s, err := measureInfo(tool, from, info, rng)
		if err != nil {
			continue
		}
		res.Phase2 = append(res.Phase2, s)
	}

	// Report everything back, as the real tools do.
	rep := Report{Client: string(from)}
	for _, s := range res.Samples() {
		rep.Samples = append(rep.Samples, ReportSample{LandmarkID: string(s.LandmarkID), RTTms: s.RTTms})
	}
	if len(rep.Samples) > 0 {
		if err := c.Upload(ctx, rep); err != nil {
			return nil, fmt.Errorf("atlasd: uploading report: %w", err)
		}
	}
	return res, nil
}

// measureInfo adapts a served landmark description back into the shape
// the Tool interface consumes.
func measureInfo(tool measure.Tool, from netsim.HostID, info LandmarkInfo, rng *rand.Rand) (measure.Sample, error) {
	lm := &atlas.Landmark{
		Host: &netsim.Host{
			ID:   netsim.HostID(info.ID),
			Addr: info.Addr,
			Loc:  geo.Point{Lat: info.Lat, Lon: info.Lon},
		},
		IsAnchor: info.Anchor,
	}
	return tool.Measure(from, lm, rng)
}

func continentValue(name string) worldmap.Continent {
	for _, c := range worldmap.AllContinents() {
		if c.String() == name {
			return c
		}
	}
	return worldmap.Europe
}
