package atlasd

import (
	"context"
	"fmt"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

// uploadAttempts bounds shed-retries for one remote campaign's calls.
const uploadAttempts = 50

// RemoteResult is a two-phase measurement run driven through the
// coordination server: the measured samples plus the delay-distance
// models the server handed out for the phase-two landmarks.
type RemoteResult struct {
	*measure.Result
	// Models maps phase-two landmark IDs to the served bestline model.
	Models map[string]ModelInfo
	// Seq is the report sequence number this campaign uploaded under.
	Seq int64
	// Accepted is true once the server acknowledged the report (202).
	Accepted bool
}

// RemoteTwoPhase runs the §4.1 two-phase procedure the way the paper's
// tools actually ran it: landmark sets come from the coordination
// server over HTTP (keyed by this client's draw key, so the selection
// is deterministic per client and campaign, at any concurrency),
// measurements are taken locally with the given tool, the phase-two
// landmarks' delay-distance models are fetched, and the results are
// reported back under an idempotent (client, seq) key.
//
// Shed responses (429, bounded admission) are retried with backoff; a
// draining server (503) is terminal when c is a single *Client, while
// a constellation client fails over to the ring successor internally
// and surfaces 503 only once no successor remains. Measurement
// failures skip the landmark, like the real tool.
func RemoteTwoPhase(ctx context.Context, c Coordinator, tool measure.Tool, from netsim.HostID, secondPhase int, seq int64, rng *rand.Rand) (*RemoteResult, error) {
	if secondPhase < 1 {
		secondPhase = 25
	}
	draw := fmt.Sprintf("%s|%d", from, seq)

	var p1 []LandmarkInfo
	err := Retry(ctx, uploadAttempts, func() error {
		var err error
		p1, err = c.Phase1Landmarks(ctx, draw)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("atlasd: phase 1 landmarks: %w", err)
	}
	res := &RemoteResult{Result: &measure.Result{}, Models: make(map[string]ModelInfo), Seq: seq}
	bestRTT := -1.0
	bestCont := ""
	for _, info := range p1 {
		s, err := measureInfo(tool, from, info, rng)
		if err != nil {
			continue
		}
		res.Phase1 = append(res.Phase1, s)
		if bestRTT < 0 || s.RTTms < bestRTT {
			bestRTT, bestCont = s.RTTms, info.Continent
		}
	}
	if len(res.Phase1) == 0 {
		return nil, measure.ErrNoLandmarks
	}
	res.Continent = continentValue(bestCont)

	var p2 []LandmarkInfo
	err = Retry(ctx, uploadAttempts, func() error {
		var err error
		p2, err = c.Phase2Landmarks(ctx, bestCont, secondPhase, draw)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("atlasd: phase 2 landmarks: %w", err)
	}
	for _, info := range p2 {
		s, err := measureInfo(tool, from, info, rng)
		if err != nil {
			continue
		}
		res.Phase2 = append(res.Phase2, s)
		// The paper's tools need each landmark's delay-distance model
		// to turn the RTT into a distance bound; fetch it from the
		// coalesced model cache like they do.
		var m *ModelInfo
		if err := Retry(ctx, uploadAttempts, func() error {
			var err error
			m, err = c.Model(ctx, info.ID)
			return err
		}); err != nil {
			return nil, fmt.Errorf("atlasd: model for %s: %w", info.ID, err)
		}
		res.Models[info.ID] = *m
	}

	// Report everything back, as the real tools do, under an idempotent
	// sequence key so a shed-and-retried upload cannot double-ledger.
	rep := Report{Client: string(from), Seq: seq}
	for _, s := range res.Samples() {
		rep.Samples = append(rep.Samples, ReportSample{LandmarkID: string(s.LandmarkID), RTTms: s.RTTms})
	}
	if len(rep.Samples) > 0 {
		if err := Retry(ctx, uploadAttempts, func() error {
			return c.Upload(ctx, rep)
		}); err != nil {
			return nil, fmt.Errorf("atlasd: uploading report: %w", err)
		}
		res.Accepted = true
	}
	return res, nil
}

// measureInfo adapts a served landmark description back into the shape
// the Tool interface consumes.
func measureInfo(tool measure.Tool, from netsim.HostID, info LandmarkInfo, rng *rand.Rand) (measure.Sample, error) {
	lm := &atlas.Landmark{
		Host: &netsim.Host{
			ID:   netsim.HostID(info.ID),
			Addr: info.Addr,
			Loc:  geo.Point{Lat: info.Lat, Lon: info.Lon},
		},
		IsAnchor: info.Anchor,
	}
	return tool.Measure(from, lm, rng)
}

func continentValue(name string) worldmap.Continent {
	for _, c := range worldmap.AllContinents() {
		if c.String() == name {
			return c
		}
	}
	return worldmap.Europe
}
