package atlasd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HTTPError is a non-2xx server response. It unwraps to ErrServer, so
// errors.Is(err, ErrServer) keeps working for every caller.
type HTTPError struct {
	Status        int
	Msg           string
	RetryAfterSec int // parsed Retry-After hint, 0 when absent
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("atlasd: server returned %d: %s", e.Status, e.Msg)
}

// Is makes errors.Is(err, ErrServer) true for every HTTPError.
func (e *HTTPError) Is(target error) bool { return target == ErrServer }

// Temporary reports whether the request is worth retrying: shed load
// (429). A 503 means the server is draining for shutdown — terminal.
func (e *HTTPError) Temporary() bool { return e.Status == http.StatusTooManyRequests }

// Coordinator is the measurement-path surface a campaign needs from
// the coordination plane: one server (*Client) or a whole sharded
// constellation behind ring routing (constellation.Client) — the
// caller cannot tell the difference, which is exactly the point of the
// cross-shard determinism contract (DESIGN.md §13).
type Coordinator interface {
	Phase1Landmarks(ctx context.Context, draw string) ([]LandmarkInfo, error)
	Phase2Landmarks(ctx context.Context, continent string, n int, draw string) ([]LandmarkInfo, error)
	Model(ctx context.Context, landmarkID string) (*ModelInfo, error)
	Upload(ctx context.Context, rep Report) error
}

// Client talks to a coordination server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10-second timeout.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) do(req *http.Request, out interface{}) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		he := &HTTPError{Status: resp.StatusCode, Msg: readErr(resp.Body)}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			he.RetryAfterSec = ra
		}
		return he
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body) // drain for keep-alive
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func readErr(r io.Reader) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(r, 4096)).Decode(&e); err == nil && e.Error != "" {
		return e.Error
	}
	return "unknown error"
}

// drawParam encodes the optional stateless-selection draw key.
func drawParam(draw string) string {
	if draw == "" {
		return ""
	}
	return "&draw=" + url.QueryEscape(draw)
}

// Phase1Landmarks fetches the widely dispersed phase-one anchor set.
// The draw key selects which deterministic permutation the server
// serves; distinct clients pass distinct keys to spread load.
func (c *Client) Phase1Landmarks(ctx context.Context, draw string) ([]LandmarkInfo, error) {
	var out []LandmarkInfo
	path := "/v1/landmarks/phase1"
	if draw != "" {
		path += "?draw=" + url.QueryEscape(draw)
	}
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Phase2Landmarks fetches n landmarks on a continent, permuted by the
// draw key.
func (c *Client) Phase2Landmarks(ctx context.Context, continent string, n int, draw string) ([]LandmarkInfo, error) {
	var out []LandmarkInfo
	path := fmt.Sprintf("/v1/landmarks/phase2?continent=%s&n=%d%s",
		url.QueryEscape(continent), n, drawParam(draw))
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Model fetches a landmark's delay-distance model.
func (c *Client) Model(ctx context.Context, landmarkID string) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.get(ctx, "/v1/model/"+url.PathEscape(landmarkID), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Upload reports a measurement batch back to the server.
func (c *Client) Upload(ctx context.Context, rep Report) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/report", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, nil)
}

// post issues a JSON POST and decodes the JSON response into out.
func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	enc, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(enc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// EpochStatus fetches the shard's current epoch and fence state.
func (c *Client) EpochStatus(ctx context.Context) (*EpochInfo, error) {
	var out EpochInfo
	if err := c.get(ctx, "/v1/epoch", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// epochOp drives one leg of the two-phase epoch barrier.
func (c *Client) epochOp(ctx context.Context, op string, epoch int64) error {
	return c.post(ctx, "/v1/epoch/"+op, epochReq{Epoch: epoch}, nil)
}

// EpochPrepare fences the shard's model serving toward epoch and
// returns once no old-epoch model response is in flight there.
func (c *Client) EpochPrepare(ctx context.Context, epoch int64) error {
	return c.epochOp(ctx, "prepare", epoch)
}

// EpochCommit flips the prepared shard to epoch and unfences it.
func (c *Client) EpochCommit(ctx context.Context, epoch int64) error {
	return c.epochOp(ctx, "commit", epoch)
}

// EpochAbort drops an uncommitted fence, leaving the old epoch live.
func (c *Client) EpochAbort(ctx context.Context, epoch int64) error {
	return c.epochOp(ctx, "abort", epoch)
}

// EpochSync jumps the shard straight to epoch — how a freshly started
// shard adopts the fleet epoch before taking traffic.
func (c *Client) EpochSync(ctx context.Context, epoch int64) error {
	return c.epochOp(ctx, "sync", epoch)
}

// Ledger fetches the shard's full report ledger, the harvest half of a
// graceful drain: the controller replays these entries onto the ring
// successors so client retries stay idempotent after the shard is gone.
func (c *Client) Ledger(ctx context.Context) ([]Report, error) {
	var out []Report
	if err := c.get(ctx, "/v1/reports", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DrainServer begins the shard's graceful shutdown and blocks until
// every in-flight measurement-path request there has finished. It
// returns the number of ledgered reports ready to harvest.
func (c *Client) DrainServer(ctx context.Context) (int, error) {
	var out map[string]int
	if err := c.post(ctx, "/v1/drain", struct{}{}, &out); err != nil {
		return 0, err
	}
	return out["ledgered"], nil
}

// Metrics fetches the server's observability snapshot.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var out Metrics
	if err := c.get(ctx, "/v1/metrics", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	var out map[string]string
	return c.get(ctx, "/v1/healthz", &out) == nil && out["status"] == "ok"
}

// Retry wraps one client call with shed-aware retries: 429 responses
// (bounded admission shedding load) are retried with exponential
// backoff, every other failure — including 503, the server draining
// for shutdown — is returned immediately. The backoff starts small so
// in-process soak tests converge quickly; the server's Retry-After is
// a hint for human-scale clients, not a mandate.
//
// Against a single server 503 is rightly terminal: the only process
// that could answer is going away. Against a constellation the same
// status means "this shard is going away" — use RetryChain with the
// ring-successor targets so the campaign fails over instead of dying.
func Retry(ctx context.Context, attempts int, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	backoff := time.Millisecond
	var err error
	for i := 0; i < attempts; i++ {
		err = fn()
		var he *HTTPError
		if err == nil || !errors.As(err, &he) || !he.Temporary() {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
	return err
}

// Failover reports whether an error should move the request to the
// next ring successor rather than fail the campaign: a 503 (that shard
// is draining) or a transport-level failure (connection refused or
// reset — the shard is gone). Semantic rejections (400/404/409) would
// be rejected identically by every shard, and the caller's own
// context expiry is its deadline, not the shard's fault — both are
// terminal.
func Failover(err error) bool {
	if err == nil {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status == http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// RetryChain runs one logical call against a failover chain: targets
// in ring-preference order, each wrapped in Retry's shed-aware backoff.
// A 503 or transport failure moves to the next target; only when no
// successor remains does it keep the single-server terminal semantics
// and return the error.
func RetryChain(ctx context.Context, attempts int, fns ...func() error) error {
	var err error
	for i, fn := range fns {
		err = Retry(ctx, attempts, fn)
		if err == nil || i == len(fns)-1 || !Failover(err) {
			return err
		}
	}
	return err
}
