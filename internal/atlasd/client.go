package atlasd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Client talks to a coordination server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10-second timeout.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%w: %s on %s: %s", ErrServer, resp.Status, path, readErr(resp.Body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func readErr(r io.Reader) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(r, 4096)).Decode(&e); err == nil && e.Error != "" {
		return e.Error
	}
	return "unknown error"
}

// Phase1Landmarks fetches the widely dispersed phase-one anchor set.
func (c *Client) Phase1Landmarks(ctx context.Context) ([]LandmarkInfo, error) {
	var out []LandmarkInfo
	if err := c.get(ctx, "/v1/landmarks/phase1", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Phase2Landmarks fetches n random landmarks on a continent.
func (c *Client) Phase2Landmarks(ctx context.Context, continent string, n int) ([]LandmarkInfo, error) {
	var out []LandmarkInfo
	path := fmt.Sprintf("/v1/landmarks/phase2?continent=%s&n=%d", url.QueryEscape(continent), n)
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Model fetches a landmark's delay-distance model.
func (c *Client) Model(ctx context.Context, landmarkID string) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.get(ctx, "/v1/model/"+url.PathEscape(landmarkID), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Upload reports a measurement batch back to the server.
func (c *Client) Upload(ctx context.Context, rep Report) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/report", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%w: %s: %s", ErrServer, resp.Status, readErr(resp.Body))
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return nil
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	var out map[string]string
	return c.get(ctx, "/v1/healthz", &out) == nil && out["status"] == "ok"
}
