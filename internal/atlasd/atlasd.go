// Package atlasd implements the measurement coordination server the
// paper describes in §4.1:
//
//	"We maintain a server that retrieves the list of anchors and probes
//	 from RIPE's database every day, selects the probes to be used as
//	 landmarks, and updates a delay-distance model for each landmark,
//	 based on the most recent two weeks of ping measurements … Our
//	 measurement tools retrieve the set of landmarks to use for each
//	 phase from this server, and report their measurements back to it."
//
// The server speaks JSON over HTTP (net/http only):
//
//	GET  /v1/landmarks/phase1?draw=K              three anchors per continent
//	GET  /v1/landmarks/phase2?continent=X&n=25&draw=K  same-continent landmarks
//	GET  /v1/model/{landmark-id}                  the landmark's bestline model
//	POST /v1/report                               upload a measurement batch
//	GET  /v1/metrics                              per-endpoint observability
//	GET  /v1/healthz                              liveness + drain state
//
// Landmarks are served with IPv4 addresses only, as the paper's server
// does ("the commercial proxy servers we are studying offer only IPv4
// connectivity").
//
// # Operational properties
//
// The server is built to be driven hard by many concurrent tools:
//
//   - Landmark selection is stateless: every draw is keyed by
//     netsim.HashID over (seed, phase, continent, n, draw-key), so a
//     response is a pure function of the request and the world seed —
//     byte-identical at any concurrency, with no shared RNG stream.
//     Clients spread load across each other by passing distinct draw
//     keys (their client ID and campaign sequence number).
//   - Delay-distance models are fitted lazily, once per landmark per
//     epoch, behind a singleflight cache: concurrent requests for the
//     same landmark coalesce onto one fit (see cache.go).
//   - Admission is bounded: at most MaxInflight measurement-path
//     requests run at once; excess load is shed immediately with
//     429 + Retry-After instead of queueing unboundedly (admission.go).
//   - Shutdown drains: BeginShutdown rejects new work with 503 while
//     Drain waits for in-flight requests — in particular /v1/report
//     batches already admitted — to finish, so every accepted report
//     is ledgered exactly once.
//   - Every endpoint is observable: request/error/shed counters and
//     latency distributions via internal/telemetry, exposed at
//     GET /v1/metrics and as access-log lines (metrics.go).
package atlasd

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
	"activegeo/internal/worldmap"
)

// LandmarkInfo is the wire representation of one landmark.
type LandmarkInfo struct {
	ID        string  `json:"id"`
	Addr      string  `json:"addr"` // IPv4 only
	Lat       float64 `json:"lat"`
	Lon       float64 `json:"lon"`
	Continent string  `json:"continent"`
	Anchor    bool    `json:"anchor"`
}

// ModelInfo is the wire representation of a landmark's delay-distance
// model (the CBG/CBG++ bestline), fitted in the epoch reported.
type ModelInfo struct {
	LandmarkID   string  `json:"landmark_id"`
	SlopeMsPerKm float64 `json:"slope_ms_per_km"`
	InterceptMs  float64 `json:"intercept_ms"`
	Pooled       bool    `json:"pooled"` // true when the pooled fallback was served
	Epoch        int64   `json:"epoch"`
}

// Report is a measurement batch uploaded by a tool. A non-zero Seq
// makes the upload idempotent: the server ledgers each (client, seq)
// pair exactly once, so a tool may safely retry after a shed or a
// dropped connection.
type Report struct {
	Client  string         `json:"client"`
	Seq     int64          `json:"seq,omitempty"`
	Target  string         `json:"target,omitempty"`
	Samples []ReportSample `json:"samples"`
}

// ReportSample is one uploaded measurement.
type ReportSample struct {
	LandmarkID string  `json:"landmark_id"`
	RTTms      float64 `json:"rtt_ms"`
}

// Config tunes a Server. The zero value plus a seed is a working
// configuration.
type Config struct {
	// Seed is the world seed; landmark draws and model identity are
	// pure functions of it.
	Seed int64
	// Opts configures the bestline fits (Slowline for CBG++-compatible
	// models).
	Opts cbg.Options
	// MaxInflight bounds concurrently admitted measurement-path
	// requests (landmarks, models, reports); excess requests are shed
	// with 429. Zero means DefaultMaxInflight.
	MaxInflight int
	// RetryAfterSec is the Retry-After hint sent with 429 responses.
	// Zero means 1.
	RetryAfterSec int
	// Telemetry receives per-endpoint counters and latency
	// distributions. Nil allocates a private collector so /v1/metrics
	// always works.
	Telemetry *telemetry.Collector
	// Log, when non-nil, receives one access-log line per request.
	Log *log.Logger

	// ShardName identifies this server inside a constellation; it is
	// echoed by /v1/epoch and /v1/metrics so operators can tell shards
	// apart. Empty for a standalone server.
	ShardName string
	// Owns, when non-nil, reports whether this shard is the consistent-
	// hash owner of a landmark ID. The server still serves non-owned
	// model requests (failover traffic after a shard drain lands here,
	// and the fit is a pure function of the constellation, so the
	// response is identical wherever it is computed) but counts them
	// under atlasd.model.not_owned.
	Owns func(id string) bool
	// FenceTTL bounds how long an epoch-barrier fence may hold model
	// serving without its commit before the shard aborts it. Zero means
	// DefaultFenceTTL.
	FenceTTL time.Duration
}

// DefaultMaxInflight is the admission bound when Config.MaxInflight is
// zero: generous for unit tests and single tools, finite for fleets.
const DefaultMaxInflight = 64

// Server coordinates measurements for one constellation.
type Server struct {
	cons   *atlas.Constellation
	cfg    Config
	tel    *telemetry.Collector
	models *modelCache
	epoch  atomic.Int64
	start  time.Time

	sem   chan struct{}
	gate  *drainGate
	egate *epochGate

	mu      sync.Mutex
	reports []Report
	seen    map[string]struct{} // client|seq pairs already ledgered
	dupes   int64
}

// NewServer builds a coordination server over a calibrated-mesh
// constellation. Models are fitted lazily on first request (one fit
// per landmark per epoch); nothing is computed up front.
func NewServer(cons *atlas.Constellation, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New()
	}
	s := &Server{
		cons:  cons,
		cfg:   cfg,
		tel:   tel,
		start: time.Now(),
		sem:   make(chan struct{}, cfg.MaxInflight),
		gate:  newDrainGate(),
		egate: newEpochGate(),
		seen:  make(map[string]struct{}),
	}
	s.models = newModelCache(s.fitModel)
	return s
}

// Epoch returns the current model epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// AdvanceEpoch starts a new model epoch: the paper's server refreshes
// its delay-distance models daily, and each refresh invalidates every
// cached fit. Returns the new epoch.
func (s *Server) AdvanceEpoch() int64 {
	e := s.epoch.Add(1)
	s.models.reset()
	return e
}

// Handler returns the HTTP handler tree, with every endpoint wrapped
// in the admission/observability middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/landmarks/phase1", s.instrument("phase1", true, s.handlePhase1))
	mux.HandleFunc("/v1/landmarks/phase2", s.instrument("phase2", true, s.handlePhase2))
	mux.HandleFunc("/v1/model/", s.instrument("model", true, s.handleModel))
	mux.HandleFunc("/v1/report", s.instrument("report", true, s.handleReport))
	mux.HandleFunc("/v1/metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.HandleFunc("/v1/healthz", s.instrument("healthz", false, s.handleHealthz))
	// Constellation control plane (DESIGN.md §13). All of it bypasses
	// the drain gate: a draining shard must still answer its epoch
	// status, hold up its half of a barrier, and hand over its ledger.
	mux.HandleFunc("/v1/epoch", s.instrument("epoch", false, s.handleEpochStatus))
	mux.HandleFunc("/v1/epoch/", s.instrument("epoch", false, s.handleEpochOp))
	mux.HandleFunc("/v1/reports", s.instrument("reports", false, s.handleReports))
	mux.HandleFunc("/v1/drain", s.instrument("drain", false, s.handleDrain))
	return mux
}

// Reports returns a copy of every ledgered report.
func (s *Server) Reports() []Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Report(nil), s.reports...)
}

// drawRNG derives the stateless selection stream for one request: a
// pure function of (seed, phase, continent, n, draw), so identical
// requests always receive identical responses, at any concurrency.
func (s *Server) drawRNG(phase, continent string, n int, draw string) *rand.Rand {
	key := fmt.Sprintf("%d|%s|%s|%d|%s", s.cfg.Seed, phase, continent, n, draw)
	return rand.New(rand.NewSource(int64(netsim.HashID(netsim.HostID(key)))))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handlePhase1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	perCont := 3
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 50 {
			httpError(w, http.StatusBadRequest, "bad n")
			return
		}
		perCont = n
	}
	draw := r.URL.Query().Get("draw")
	byCont := s.cons.ByContinent()
	var out []LandmarkInfo
	for _, cont := range worldmap.AllContinents() {
		var anchors []*atlas.Landmark
		for _, lm := range byCont[cont] {
			if lm.IsAnchor {
				anchors = append(anchors, lm)
			}
		}
		if len(anchors) == 0 {
			continue
		}
		rng := s.drawRNG("phase1", cont.String(), perCont, draw)
		perm := rng.Perm(len(anchors))
		for i := 0; i < perCont && i < len(anchors); i++ {
			out = append(out, toInfo(anchors[perm[i]], cont))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePhase2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	contName := r.URL.Query().Get("continent")
	cont, ok := continentByName(contName)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown continent %q", contName))
		return
	}
	n := 25
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 500 {
			httpError(w, http.StatusBadRequest, "bad n")
			return
		}
		n = parsed
	}
	pool := s.cons.ByContinent()[cont]
	if len(pool) == 0 {
		httpError(w, http.StatusNotFound, "no landmarks on that continent")
		return
	}
	rng := s.drawRNG("phase2", cont.String(), n, r.URL.Query().Get("draw"))
	perm := rng.Perm(len(pool))
	var out []LandmarkInfo
	for i := 0; i < n && i < len(pool); i++ {
		out = append(out, toInfo(pool[perm[i]], cont))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/model/")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing landmark id")
		return
	}
	if s.cons.Landmark(netsim.HostID(id)) == nil {
		httpError(w, http.StatusNotFound, "unknown landmark")
		return
	}
	if s.cfg.Owns != nil && !s.cfg.Owns(id) {
		s.tel.Add("atlasd.model.not_owned", 1)
	}
	// The epoch gate brackets the whole fit-and-respond path: once a
	// barrier's prepare has acked, no response fitted at the old epoch
	// is still in flight (DESIGN.md §13).
	s.egate.enter()
	defer s.egate.exit()
	m, err := s.models.get(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "model fit failed: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// fitModel is the expensive per-landmark operation the cache coalesces:
// fit the landmark's bestline from its calibration mesh, falling back
// to the pooled line (itself fitted once per epoch, under the cache key
// pooledKey) for landmarks without their own scatter.
func (s *Server) fitModel(id string) (ModelInfo, error) {
	epoch := s.epoch.Load()
	if id == pooledKey {
		line, err := cbg.BestLine(oneWay(s.cons.Pooled()), s.cfg.Opts.Slowline)
		if err != nil {
			return ModelInfo{}, fmt.Errorf("pooled fit: %w", err)
		}
		return ModelInfo{
			LandmarkID:   pooledKey,
			SlopeMsPerKm: line.Slope,
			InterceptMs:  line.Intercept,
			Pooled:       true,
			Epoch:        epoch,
		}, nil
	}
	lm := s.cons.Landmark(netsim.HostID(id))
	if lm == nil {
		return ModelInfo{}, fmt.Errorf("unknown landmark %s", id)
	}
	pts := s.cons.Calibration(lm.Host.ID)
	if lm.IsAnchor && len(pts) > 0 {
		line, err := cbg.BestLine(oneWay(pts), s.cfg.Opts.Slowline)
		if err != nil {
			return ModelInfo{}, err
		}
		return ModelInfo{
			LandmarkID:   id,
			SlopeMsPerKm: line.Slope,
			InterceptMs:  line.Intercept,
			Epoch:        epoch,
		}, nil
	}
	pooled, err := s.models.get(pooledKey)
	if err != nil {
		return ModelInfo{}, err
	}
	return ModelInfo{
		LandmarkID:   id,
		SlopeMsPerKm: pooled.SlopeMsPerKm,
		InterceptMs:  pooled.InterceptMs,
		// Anchors without mesh data are served the pooled line but not
		// flagged, matching cbg.Calibration semantics.
		Pooled: !lm.IsAnchor,
		Epoch:  epoch,
	}, nil
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var rep Report
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&rep); err != nil {
		httpError(w, http.StatusBadRequest, "bad report: "+err.Error())
		return
	}
	if rep.Client == "" || len(rep.Samples) == 0 {
		httpError(w, http.StatusBadRequest, "report needs a client and samples")
		return
	}
	if rep.Seq < 0 {
		httpError(w, http.StatusBadRequest, "negative seq")
		return
	}
	for _, smp := range rep.Samples {
		if smp.RTTms <= 0 {
			httpError(w, http.StatusBadRequest, "non-positive RTT")
			return
		}
		if s.cons.Landmark(netsim.HostID(smp.LandmarkID)) == nil {
			httpError(w, http.StatusBadRequest, "unknown landmark "+smp.LandmarkID)
			return
		}
	}
	s.mu.Lock()
	if rep.Seq > 0 {
		key := rep.Client + "|" + strconv.FormatInt(rep.Seq, 10)
		if _, dup := s.seen[key]; dup {
			s.dupes++
			s.mu.Unlock()
			s.tel.Add("atlasd.report.duplicates", 1)
			// Idempotent retry: same receipt as the first upload.
			writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(rep.Samples)})
			return
		}
		s.seen[key] = struct{}{}
	}
	s.reports = append(s.reports, rep)
	s.mu.Unlock()
	s.tel.Add("atlasd.report.samples", int64(len(rep.Samples)))
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(rep.Samples)})
}

func toInfo(lm *atlas.Landmark, cont worldmap.Continent) LandmarkInfo {
	return LandmarkInfo{
		ID:        string(lm.Host.ID),
		Addr:      lm.Host.Addr,
		Lat:       lm.Host.Loc.Lat,
		Lon:       lm.Host.Loc.Lon,
		Continent: cont.String(),
		Anchor:    lm.IsAnchor,
	}
}

func continentByName(name string) (worldmap.Continent, bool) {
	for _, c := range worldmap.AllContinents() {
		if strings.EqualFold(c.String(), name) {
			return c, true
		}
	}
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("atlasd: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// ErrServer is returned by the client for non-2xx responses.
var ErrServer = errors.New("atlasd: server error")
