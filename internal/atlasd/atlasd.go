// Package atlasd implements the measurement coordination server the
// paper describes in §4.1:
//
//	"We maintain a server that retrieves the list of anchors and probes
//	 from RIPE's database every day, selects the probes to be used as
//	 landmarks, and updates a delay-distance model for each landmark,
//	 based on the most recent two weeks of ping measurements … Our
//	 measurement tools retrieve the set of landmarks to use for each
//	 phase from this server, and report their measurements back to it."
//
// The server speaks JSON over HTTP (net/http only):
//
//	GET  /v1/landmarks/phase1                 three anchors per continent
//	GET  /v1/landmarks/phase2?continent=X&n=25  random same-continent landmarks
//	GET  /v1/model/{landmark-id}              the landmark's bestline model
//	POST /v1/report                           upload a measurement batch
//	GET  /v1/healthz                          liveness
//
// Landmarks are served with IPv4 addresses only, as the paper's server
// does ("the commercial proxy servers we are studying offer only IPv4
// connectivity").
package atlasd

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

// LandmarkInfo is the wire representation of one landmark.
type LandmarkInfo struct {
	ID        string  `json:"id"`
	Addr      string  `json:"addr"` // IPv4 only
	Lat       float64 `json:"lat"`
	Lon       float64 `json:"lon"`
	Continent string  `json:"continent"`
	Anchor    bool    `json:"anchor"`
}

// ModelInfo is the wire representation of a landmark's delay-distance
// model (the CBG/CBG++ bestline).
type ModelInfo struct {
	LandmarkID   string  `json:"landmark_id"`
	SlopeMsPerKm float64 `json:"slope_ms_per_km"`
	InterceptMs  float64 `json:"intercept_ms"`
	Pooled       bool    `json:"pooled"` // true when the pooled fallback was served
}

// Report is a measurement batch uploaded by a tool.
type Report struct {
	Client  string         `json:"client"`
	Target  string         `json:"target,omitempty"`
	Samples []ReportSample `json:"samples"`
}

// ReportSample is one uploaded measurement.
type ReportSample struct {
	LandmarkID string  `json:"landmark_id"`
	RTTms      float64 `json:"rtt_ms"`
}

// Server coordinates measurements for one constellation.
type Server struct {
	cons *atlas.Constellation
	cal  *cbg.Calibration

	mu      sync.Mutex
	rng     *rand.Rand
	reports []Report
}

// NewServer builds a coordination server. The rng drives phase-two
// landmark selection (randomized to spread measurement load, §4.1).
func NewServer(cons *atlas.Constellation, cal *cbg.Calibration, seed int64) *Server {
	return &Server{cons: cons, cal: cal, rng: rand.New(rand.NewSource(seed))}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/landmarks/phase1", s.handlePhase1)
	mux.HandleFunc("/v1/landmarks/phase2", s.handlePhase2)
	mux.HandleFunc("/v1/model/", s.handleModel)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// Reports returns a copy of every uploaded report.
func (s *Server) Reports() []Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Report(nil), s.reports...)
}

func (s *Server) handlePhase1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	perCont := 3
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 50 {
			httpError(w, http.StatusBadRequest, "bad n")
			return
		}
		perCont = n
	}
	byCont := s.cons.ByContinent()
	var out []LandmarkInfo
	s.mu.Lock()
	for _, cont := range worldmap.AllContinents() {
		var anchors []*atlas.Landmark
		for _, lm := range byCont[cont] {
			if lm.IsAnchor {
				anchors = append(anchors, lm)
			}
		}
		if len(anchors) == 0 {
			continue
		}
		perm := s.rng.Perm(len(anchors))
		for i := 0; i < perCont && i < len(anchors); i++ {
			out = append(out, toInfo(anchors[perm[i]], cont))
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePhase2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	contName := r.URL.Query().Get("continent")
	cont, ok := continentByName(contName)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown continent %q", contName))
		return
	}
	n := 25
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 500 {
			httpError(w, http.StatusBadRequest, "bad n")
			return
		}
		n = parsed
	}
	pool := s.cons.ByContinent()[cont]
	if len(pool) == 0 {
		httpError(w, http.StatusNotFound, "no landmarks on that continent")
		return
	}
	var out []LandmarkInfo
	s.mu.Lock()
	perm := s.rng.Perm(len(pool))
	for i := 0; i < n && i < len(pool); i++ {
		out = append(out, toInfo(pool[perm[i]], cont))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/model/")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing landmark id")
		return
	}
	lm := s.cons.Landmark(netsim.HostID(id))
	if lm == nil {
		httpError(w, http.StatusNotFound, "unknown landmark")
		return
	}
	line := s.cal.Line(lm.Host.ID)
	writeJSON(w, http.StatusOK, ModelInfo{
		LandmarkID:   id,
		SlopeMsPerKm: line.Slope,
		InterceptMs:  line.Intercept,
		Pooled:       line == s.cal.Pooled() && !lm.IsAnchor,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var rep Report
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&rep); err != nil {
		httpError(w, http.StatusBadRequest, "bad report: "+err.Error())
		return
	}
	if rep.Client == "" || len(rep.Samples) == 0 {
		httpError(w, http.StatusBadRequest, "report needs a client and samples")
		return
	}
	for _, smp := range rep.Samples {
		if smp.RTTms <= 0 {
			httpError(w, http.StatusBadRequest, "non-positive RTT")
			return
		}
		if s.cons.Landmark(netsim.HostID(smp.LandmarkID)) == nil {
			httpError(w, http.StatusBadRequest, "unknown landmark "+smp.LandmarkID)
			return
		}
	}
	s.mu.Lock()
	s.reports = append(s.reports, rep)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(rep.Samples)})
}

func toInfo(lm *atlas.Landmark, cont worldmap.Continent) LandmarkInfo {
	return LandmarkInfo{
		ID:        string(lm.Host.ID),
		Addr:      lm.Host.Addr,
		Lat:       lm.Host.Loc.Lat,
		Lon:       lm.Host.Loc.Lon,
		Continent: cont.String(),
		Anchor:    lm.IsAnchor,
	}
}

func continentByName(name string) (worldmap.Continent, bool) {
	for _, c := range worldmap.AllContinents() {
		if strings.EqualFold(c.String(), name) {
			return c, true
		}
	}
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("atlasd: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// ErrServer is returned by the client for non-2xx responses.
var ErrServer = errors.New("atlasd: server error")
