package atlasd

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"
)

// The epoch barrier endpoints make a fleet of atlasd shards advance
// their model epochs in lock-step (DESIGN.md §13). A controller drives
// the classic two-phase shape over plain HTTP:
//
//	POST /v1/epoch/prepare {"epoch": N}   fence model serving, drain
//	                                      in-flight model responses,
//	                                      ack when none remain
//	POST /v1/epoch/commit  {"epoch": N}   flip to epoch N under the
//	                                      fence, then unfence
//	POST /v1/epoch/abort   {"epoch": N}   drop the fence, stay at N-1
//	POST /v1/epoch/sync    {"epoch": N}   jump straight to N (a shard
//	                                      joining an existing fleet)
//	GET  /v1/epoch                        current epoch + fence state
//
// The guarantee: once every shard has acked prepare, no model response
// fitted at the old epoch is in flight anywhere, and model serving is
// held until commit — so at every instant the fleet serves models from
// exactly one epoch. A fence that never sees its commit (controller
// crash) auto-aborts after Config.FenceTTL, so an abandoned barrier
// degrades to "stay at the old epoch", never to a wedged shard.

// DefaultFenceTTL bounds how long a prepared-but-uncommitted fence may
// hold model serving before the shard aborts it unilaterally.
const DefaultFenceTTL = 5 * time.Second

var (
	// errEpochConflict: the requested transition does not apply to this
	// shard's state (wrong target, no fence to commit, …). 409.
	errEpochConflict = errors.New("atlasd: epoch transition conflict")
	// errFenceTimeout: in-flight model responses did not drain within
	// the TTL; the fence was dropped. 503 — the controller retries.
	errFenceTimeout = errors.New("atlasd: epoch fence timed out waiting for in-flight models")
)

// epochGate serializes model serving against epoch flips. Model
// requests enter/exit around the fit-and-respond path; prepare fences
// the gate and waits for in-flight responses to finish; commit flips
// the epoch while the fence is still up, so no request can observe a
// half-advanced shard.
type epochGate struct {
	mu         sync.Mutex
	cond       *sync.Cond
	fenced     bool
	committing bool
	target     int64
	inflight   int
	ttl        *time.Timer
}

func newEpochGate() *epochGate {
	g := &epochGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter blocks while the gate is fenced, then registers one in-flight
// model response. The fence TTL bounds the wait. Every enter must be
// paired with exit.
func (g *epochGate) enter() {
	g.mu.Lock()
	for g.fenced {
		g.cond.Wait()
	}
	g.inflight++
	g.mu.Unlock()
}

func (g *epochGate) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// fence raises the barrier toward target (which must be cur+1). A
// re-prepare of the same target is idempotent. The TTL timer aborts
// the fence if no commit arrives in time.
func (g *epochGate) fence(target, cur int64, ttl time.Duration) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fenced {
		if g.target == target {
			return nil // idempotent re-prepare
		}
		return errEpochConflict
	}
	if target != cur+1 {
		return errEpochConflict
	}
	g.fenced = true
	g.committing = false
	g.target = target
	g.ttl = time.AfterFunc(ttl, func() { g.abort(target) })
	return nil
}

// waitIdle blocks until no model response is in flight, or the bound
// elapses. It reports whether the gate actually went idle.
func (g *epochGate) waitIdle(bound time.Duration) bool {
	timedOut := false
	t := time.AfterFunc(bound, func() {
		g.mu.Lock()
		timedOut = true
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer t.Stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inflight > 0 && !timedOut {
		g.cond.Wait()
	}
	return g.inflight == 0
}

// beginCommit claims the fenced gate for the commit; the fence stays
// up until release, so the epoch flip happens entirely behind it.
func (g *epochGate) beginCommit(target int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.fenced || g.target != target || g.committing {
		return errEpochConflict
	}
	g.committing = true
	return nil
}

// release drops the fence after a completed commit.
func (g *epochGate) release(target int64) {
	g.mu.Lock()
	if g.target == target {
		g.fenced = false
		g.committing = false
		if g.ttl != nil {
			g.ttl.Stop()
		}
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// abort drops an uncommitted fence for target. Called by the TTL timer
// and by the controller's abort; a commit already in progress wins.
func (g *epochGate) abort(target int64) {
	g.mu.Lock()
	if g.fenced && !g.committing && g.target == target {
		g.fenced = false
		if g.ttl != nil {
			g.ttl.Stop()
		}
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// forceRelease unconditionally clears any fence — the sync path, where
// a joining shard adopts the fleet epoch regardless of local state.
func (g *epochGate) forceRelease() {
	g.mu.Lock()
	g.fenced = false
	g.committing = false
	if g.ttl != nil {
		g.ttl.Stop()
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *epochGate) isFenced() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fenced
}

// EpochInfo is the GET /v1/epoch response.
type EpochInfo struct {
	Epoch  int64  `json:"epoch"`
	Fenced bool   `json:"fenced"`
	Shard  string `json:"shard,omitempty"`
}

// epochReq is the body of every epoch transition POST.
type epochReq struct {
	Epoch int64 `json:"epoch"`
}

func (s *Server) fenceTTL() time.Duration {
	if s.cfg.FenceTTL > 0 {
		return s.cfg.FenceTTL
	}
	return DefaultFenceTTL
}

// prepareEpoch fences model serving toward target and waits for every
// in-flight model response to complete.
func (s *Server) prepareEpoch(target int64) error {
	if err := s.egate.fence(target, s.epoch.Load(), s.fenceTTL()); err != nil {
		return err
	}
	if !s.egate.waitIdle(s.fenceTTL()) {
		s.egate.abort(target)
		return errFenceTimeout
	}
	return nil
}

// commitEpoch flips the shard to target behind the still-raised fence:
// between beginCommit and release no model request can be served, so
// no response mixes the old epoch's cache with the new stamp.
func (s *Server) commitEpoch(target int64) error {
	if err := s.egate.beginCommit(target); err != nil {
		return err
	}
	s.epoch.Store(target)
	s.models.reset()
	s.egate.release(target)
	return nil
}

// syncEpoch jumps the shard to target unconditionally — how a freshly
// (re)started shard adopts the fleet epoch before taking traffic.
func (s *Server) syncEpoch(target int64) {
	s.egate.forceRelease()
	s.epoch.Store(target)
	s.models.reset()
}

func (s *Server) handleEpochStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, EpochInfo{
		Epoch:  s.epoch.Load(),
		Fenced: s.egate.isFenced(),
		Shard:  s.cfg.ShardName,
	})
}

func (s *Server) handleEpochOp(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	op := strings.TrimPrefix(r.URL.Path, "/v1/epoch/")
	var req epochReq
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad epoch request: "+err.Error())
		return
	}
	var err error
	switch op {
	case "prepare":
		err = s.prepareEpoch(req.Epoch)
	case "commit":
		err = s.commitEpoch(req.Epoch)
	case "abort":
		s.egate.abort(req.Epoch)
	case "sync":
		s.syncEpoch(req.Epoch)
	default:
		httpError(w, http.StatusNotFound, "unknown epoch operation "+op)
		return
	}
	switch {
	case err == nil:
		s.tel.Add("atlasd.epoch."+op, 1)
		writeJSON(w, http.StatusOK, EpochInfo{
			Epoch:  s.epoch.Load(),
			Fenced: s.egate.isFenced(),
			Shard:  s.cfg.ShardName,
		})
	case errors.Is(err, errEpochConflict):
		httpError(w, http.StatusConflict, err.Error())
	default:
		httpError(w, http.StatusServiceUnavailable, err.Error())
	}
}

// handleReports dumps the full report ledger — the harvest half of a
// controller-driven drain, which replays these entries onto the ring
// successor. Served outside the drain gate so a draining shard can
// still be harvested.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Reports())
}

// handleDrain begins shutdown and blocks until every in-flight
// measurement-path request has finished — the wire form of Drain, so a
// remote controller can gracefully remove a shard. The response
// reports how many ledgered reports are ready to harvest.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := s.Drain(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, "drain interrupted: "+err.Error())
		return
	}
	s.mu.Lock()
	n := len(s.reports)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"ledgered": n})
}
