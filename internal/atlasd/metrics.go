package atlasd

import (
	"net/http"
	"time"
)

// endpointNames lists the instrumented endpoints in serving order; the
// metrics builder ranges over this fixed slice, never over a map.
var endpointNames = []string{"phase1", "phase2", "model", "report", "metrics", "healthz", "epoch", "reports", "drain"}

// EndpointMetrics summarizes one endpoint's traffic since startup.
type EndpointMetrics struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	DrainRejects int64   `json:"drain_rejects"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
}

// Metrics is the /v1/metrics response: the server's operational state
// in one scrape.
type Metrics struct {
	UptimeMs         float64                    `json:"uptime_ms"`
	Shard            string                     `json:"shard,omitempty"`
	Draining         bool                       `json:"draining"`
	Epoch            int64                      `json:"epoch"`
	EpochFenced      bool                       `json:"epoch_fenced"`
	MaxInflight      int                        `json:"max_inflight"`
	Endpoints        map[string]EndpointMetrics `json:"endpoints"`
	ReportsLedgered  int                        `json:"reports_ledgered"`
	DuplicateReports int64                      `json:"duplicate_reports"`
	ModelCache       CacheStats                 `json:"model_cache"`
	// ModelNotOwned counts model requests this shard served for
	// landmarks the consistent-hash ring assigns elsewhere — failover
	// traffic after a peer drained, or hedged reads.
	ModelNotOwned int64 `json:"model_not_owned"`
}

// Metrics returns a snapshot of the server's observability state, the
// same struct /v1/metrics serves.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		UptimeMs:      float64(time.Since(s.start).Microseconds()) / 1000,
		Shard:         s.cfg.ShardName,
		Draining:      s.Draining(),
		Epoch:         s.epoch.Load(),
		EpochFenced:   s.egate.isFenced(),
		MaxInflight:   s.cfg.MaxInflight,
		Endpoints:     make(map[string]EndpointMetrics, len(endpointNames)),
		ModelCache:    s.models.Stats(),
		ModelNotOwned: s.tel.Count("atlasd.model.not_owned"),
	}
	for _, name := range endpointNames {
		em := EndpointMetrics{
			Requests:     s.tel.Count("atlasd." + name + ".requests"),
			Errors:       s.tel.Count("atlasd." + name + ".errors"),
			Shed:         s.tel.Count("atlasd." + name + ".shed"),
			DrainRejects: s.tel.Count("atlasd." + name + ".drain_rejects"),
		}
		if d, ok := s.tel.Distribution("atlasd." + name + ".latency_ms"); ok {
			em.P50Ms, em.P99Ms, em.MaxMs = d.P50, d.P99, d.Max
		}
		m.Endpoints[name] = em
	}
	s.mu.Lock()
	m.ReportsLedgered = len(s.reports)
	m.DuplicateReports = s.dupes
	s.mu.Unlock()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}
