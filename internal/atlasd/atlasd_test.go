package atlasd

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/geo"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

var (
	fixOnce sync.Once
	fixSrv  *Server
	fixCons *atlas.Constellation
)

func testServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	fixOnce.Do(func() {
		net := netsim.New(31)
		rng := rand.New(rand.NewSource(31))
		cons, err := atlas.Build(net, atlas.Config{Anchors: 50, Probes: 40, SamplesPerPair: 3}, rng)
		if err != nil {
			panic(err)
		}
		cal, err := cbg.Calibrate(cons, cbg.Options{Slowline: true})
		if err != nil {
			panic(err)
		}
		fixCons = cons
		fixSrv = NewServer(cons, cal, 31)
	})
	ts := httptest.NewServer(fixSrv.Handler())
	t.Cleanup(ts.Close)
	return ts, fixSrv
}

func client(ts *httptest.Server) *Client {
	return &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	if !client(ts).Healthy(context.Background()) {
		t.Error("server not healthy")
	}
}

func TestPhase1Landmarks(t *testing.T) {
	ts, _ := testServer(t)
	lms, err := client(ts).Phase1Landmarks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) == 0 {
		t.Fatal("no landmarks")
	}
	perCont := map[string]int{}
	for _, lm := range lms {
		if !lm.Anchor {
			t.Errorf("phase 1 must serve anchors only, got probe %s", lm.ID)
		}
		if lm.Addr == "" || strings.Contains(lm.Addr, ":") {
			t.Errorf("landmark %s addr %q not a bare IPv4", lm.ID, lm.Addr)
		}
		perCont[lm.Continent]++
	}
	for cont, n := range perCont {
		if n > 3 {
			t.Errorf("continent %s served %d anchors, max 3", cont, n)
		}
	}
	if len(perCont) < 4 {
		t.Errorf("only %d continents served", len(perCont))
	}
}

func TestPhase2Landmarks(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	lms, err := c.Phase2Landmarks(context.Background(), "Europe", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) == 0 || len(lms) > 10 {
		t.Fatalf("landmarks = %d", len(lms))
	}
	for _, lm := range lms {
		if lm.Continent != "Europe" {
			t.Errorf("landmark %s on %s", lm.ID, lm.Continent)
		}
	}
	// Random selection: two draws should (almost surely) differ.
	again, err := c.Phase2Landmarks(context.Background(), "Europe", 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range lms {
		if i >= len(again) || lms[i].ID != again[i].ID {
			same = false
			break
		}
	}
	if same && len(lms) >= 5 {
		t.Error("two phase-2 draws identical; selection not randomized")
	}
}

func TestPhase2Errors(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	if _, err := c.Phase2Landmarks(context.Background(), "Atlantis", 10); err == nil {
		t.Error("unknown continent should fail")
	}
	resp, err := http.Get(ts.URL + "/v1/landmarks/phase2?continent=Europe&n=99999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge n: status %d", resp.StatusCode)
	}
}

func TestModelEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	anchor := fixCons.Anchors()[0]
	m, err := c.Model(context.Background(), string(anchor.Host.ID))
	if err != nil {
		t.Fatal(err)
	}
	if m.SlopeMsPerKm < 1.0/200-1e-12 {
		t.Errorf("served slope %f faster than baseline", m.SlopeMsPerKm)
	}
	if m.Pooled {
		t.Error("anchor model should not be pooled")
	}
	// Probe: falls back to pooled.
	probe := fixCons.Probes()[0]
	pm, err := c.Model(context.Background(), string(probe.Host.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Pooled {
		t.Error("probe model should be flagged pooled")
	}
	// Unknown landmark → 404.
	if _, err := c.Model(context.Background(), "nonexistent"); err == nil {
		t.Error("unknown landmark should fail")
	}
}

func TestReportUploadAndValidation(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	anchor := fixCons.Anchors()[1]
	rep := Report{
		Client: "test-client",
		Target: "vpn-X-0001",
		Samples: []ReportSample{
			{LandmarkID: string(anchor.Host.ID), RTTms: 42.5},
		},
	}
	if err := c.Upload(context.Background(), rep); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range srv.Reports() {
		if r.Client == "test-client" && len(r.Samples) == 1 && r.Samples[0].RTTms == 42.5 {
			found = true
		}
	}
	if !found {
		t.Error("uploaded report not stored")
	}

	// Validation failures.
	bad := []Report{
		{Client: "", Samples: rep.Samples}, // no client
		{Client: "x"},                      // no samples
		{Client: "x", Samples: []ReportSample{{LandmarkID: string(anchor.Host.ID), RTTms: -1}}}, // bad RTT
		{Client: "x", Samples: []ReportSample{{LandmarkID: "bogus", RTTms: 5}}},                 // unknown landmark
	}
	for i, r := range bad {
		if err := c.Upload(context.Background(), r); err == nil {
			t.Errorf("bad report %d accepted", i)
		}
	}
}

func TestMethodEnforcement(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/landmarks/phase1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to phase1: %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET to report: %d", resp2.StatusCode)
	}
}

func TestReportBodyLimit(t *testing.T) {
	ts, _ := testServer(t)
	huge := strings.NewReader(`{"client":"x","samples":[` + strings.Repeat(`{"landmark_id":"a","rtt_ms":1},`, 100000) + `]}`)
	resp, err := http.Post(ts.URL+"/v1/report", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Error("oversized report accepted")
	}
}

func TestEndToEndTwoPhaseOverHTTP(t *testing.T) {
	// A client walks the full §4.1 protocol over the wire: phase 1 →
	// deduce continent → phase 2 → fetch a model → upload results.
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()

	p1, err := c.Phase1Landmarks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Pretend the lowest simulated RTT came from a European anchor.
	continent := "Europe"
	p2, err := c.Phase2Landmarks(ctx, continent, 5)
	if err != nil {
		t.Fatal(err)
	}
	var samples []ReportSample
	for _, lm := range p2 {
		m, err := c.Model(ctx, lm.ID)
		if err != nil {
			t.Fatalf("model for %s: %v", lm.ID, err)
		}
		_ = m
		samples = append(samples, ReportSample{LandmarkID: lm.ID, RTTms: 30})
	}
	if err := c.Upload(ctx, Report{Client: "e2e", Samples: samples}); err != nil {
		t.Fatal(err)
	}
	if n := len(srv.Reports()); n == 0 {
		t.Error("no reports stored")
	}
	_ = p1
}

func TestRemoteTwoPhase(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()

	// A target in Berlin measured via HTTP-served landmarks.
	net := fixCons.Net()
	from := netsim.HostID("remote-tp-berlin")
	if net.Host(from) == nil {
		if err := net.AddHost(&netsim.Host{ID: from, Loc: geoPoint(52.52, 13.405)}); err != nil {
			t.Fatal(err)
		}
	}
	tool := &measure.CLITool{Net: net}
	res, err := RemoteTwoPhase(ctx, c, tool, from, 10, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Continent.String() != "Europe" {
		t.Errorf("continent = %v", res.Continent)
	}
	if len(res.Phase2) == 0 {
		t.Error("no phase-2 samples")
	}
	if len(res.Phase2) > 10 {
		t.Errorf("phase 2 oversubscribed: %d", len(res.Phase2))
	}
	// The report landed on the server.
	found := false
	for _, r := range srv.Reports() {
		if r.Client == string(from) {
			found = true
		}
	}
	if !found {
		t.Error("remote run did not upload its report")
	}
	// The measurements are usable by algorithms.
	ms := res.Measurements()
	for _, m := range ms {
		if !m.Landmark.Valid() || m.RTTms <= 0 {
			t.Fatalf("bad measurement %+v", m)
		}
	}
}

func TestJSONShapes(t *testing.T) {
	// The wire format is part of the API; lock the field names.
	b, _ := json.Marshal(LandmarkInfo{ID: "a", Addr: "192.0.2.1", Lat: 1, Lon: 2, Continent: "Europe", Anchor: true})
	for _, key := range []string{`"id"`, `"addr"`, `"lat"`, `"lon"`, `"continent"`, `"anchor"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("LandmarkInfo JSON missing %s: %s", key, b)
		}
	}
	b, _ = json.Marshal(ModelInfo{LandmarkID: "a"})
	if !strings.Contains(string(b), `"slope_ms_per_km"`) {
		t.Errorf("ModelInfo JSON: %s", b)
	}
}

func geoPoint(lat, lon float64) geo.Point { return geo.Point{Lat: lat, Lon: lon} }
