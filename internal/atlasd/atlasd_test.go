package atlasd

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/geo"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

// cbgOptions mirrors the slowline calibration the old up-front fixture
// used, so the lazily fitted models match it exactly.
func cbgOptions() cbg.Options { return cbg.Options{Slowline: true} }

var (
	fixOnce sync.Once
	fixCons *atlas.Constellation
)

// testCons builds the shared landmark constellation once; servers are
// cheap now (models fit lazily) so every test gets a fresh one.
func testCons() *atlas.Constellation {
	fixOnce.Do(func() {
		net := netsim.New(31)
		rng := rand.New(rand.NewSource(31))
		cons, err := atlas.Build(net, atlas.Config{Anchors: 50, Probes: 40, SamplesPerPair: 3}, rng)
		if err != nil {
			panic(err)
		}
		fixCons = cons
	})
	return fixCons
}

func testServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	return testServerCfg(t, Config{Seed: 31, Opts: cbgOptions()})
}

func testServerCfg(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewServer(testCons(), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func client(ts *httptest.Server) *Client {
	return &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

func TestHealthz(t *testing.T) {
	ts, srv := testServer(t)
	if !client(ts).Healthy(context.Background()) {
		t.Error("server not healthy")
	}
	srv.BeginShutdown()
	if client(ts).Healthy(context.Background()) {
		t.Error("draining server still reports ok")
	}
}

func TestPhase1Landmarks(t *testing.T) {
	ts, _ := testServer(t)
	lms, err := client(ts).Phase1Landmarks(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) == 0 {
		t.Fatal("no landmarks")
	}
	perCont := map[string]int{}
	for _, lm := range lms {
		if !lm.Anchor {
			t.Errorf("phase 1 must serve anchors only, got probe %s", lm.ID)
		}
		if lm.Addr == "" || strings.Contains(lm.Addr, ":") {
			t.Errorf("landmark %s addr %q not a bare IPv4", lm.ID, lm.Addr)
		}
		perCont[lm.Continent]++
	}
	for cont, n := range perCont {
		if n > 3 {
			t.Errorf("continent %s served %d anchors, max 3", cont, n)
		}
	}
	if len(perCont) < 4 {
		t.Errorf("only %d continents served", len(perCont))
	}
}

func TestPhase2Landmarks(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	lms, err := c.Phase2Landmarks(context.Background(), "Europe", 10, "client-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) == 0 || len(lms) > 10 {
		t.Fatalf("landmarks = %d", len(lms))
	}
	for _, lm := range lms {
		if lm.Continent != "Europe" {
			t.Errorf("landmark %s on %s", lm.ID, lm.Continent)
		}
	}
	// Selection is stateless: the same draw key always yields the same
	// set, a different key (almost surely) a different one.
	again, err := c.Phase2Landmarks(context.Background(), "Europe", 10, "client-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(lms) {
		t.Fatalf("repeat draw size %d != %d", len(again), len(lms))
	}
	for i := range lms {
		if lms[i].ID != again[i].ID {
			t.Errorf("repeat draw differs at %d: %s != %s", i, lms[i].ID, again[i].ID)
		}
	}
	other, err := c.Phase2Landmarks(context.Background(), "Europe", 10, "client-b")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range lms {
		if i >= len(other) || lms[i].ID != other[i].ID {
			same = false
			break
		}
	}
	if same && len(lms) >= 5 {
		t.Error("two distinct draw keys produced identical selections")
	}
}

func TestPhase2Errors(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	if _, err := c.Phase2Landmarks(context.Background(), "Atlantis", 10, ""); err == nil {
		t.Error("unknown continent should fail")
	}
	resp, err := http.Get(ts.URL + "/v1/landmarks/phase2?continent=Europe&n=99999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge n: status %d", resp.StatusCode)
	}
}

func TestModelEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	anchor := fixCons.Anchors()[0]
	m, err := c.Model(context.Background(), string(anchor.Host.ID))
	if err != nil {
		t.Fatal(err)
	}
	if m.SlopeMsPerKm < 1.0/200-1e-12 {
		t.Errorf("served slope %f faster than baseline", m.SlopeMsPerKm)
	}
	if m.Pooled {
		t.Error("anchor model should not be pooled")
	}
	// Probe: falls back to pooled.
	probe := fixCons.Probes()[0]
	pm, err := c.Model(context.Background(), string(probe.Host.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Pooled {
		t.Error("probe model should be flagged pooled")
	}
	// Unknown landmark → 404.
	if _, err := c.Model(context.Background(), "nonexistent"); err == nil {
		t.Error("unknown landmark should fail")
	}
}

func TestModelCacheCoalesces(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()
	anchor := string(fixCons.Anchors()[2].Host.ID)

	// 16 concurrent fetches of the same landmark: exactly one fit.
	var wg sync.WaitGroup
	models := make([]*ModelInfo, 16)
	for i := range models {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.Model(ctx, anchor)
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i, m := range models {
		if m == nil || *m != *models[0] {
			t.Fatalf("model %d = %+v, want %+v", i, m, models[0])
		}
	}
	stats := srv.Metrics().ModelCache
	if stats.Fits != 1 {
		t.Errorf("fits = %d, want exactly 1 for one landmark", stats.Fits)
	}
	if stats.Misses+stats.Hits < 16 {
		t.Errorf("cache saw %d misses + %d hits for 16 requests", stats.Misses, stats.Hits)
	}

	// Serial re-fetches are pure cache hits.
	before := srv.Metrics().ModelCache
	for i := 0; i < 5; i++ {
		if _, err := c.Model(ctx, anchor); err != nil {
			t.Fatal(err)
		}
	}
	after := srv.Metrics().ModelCache
	if after.Fits != before.Fits {
		t.Errorf("serial re-fetches refitted: %d -> %d", before.Fits, after.Fits)
	}
	if after.Hits-before.Hits != 5 {
		t.Errorf("hits advanced by %d, want 5", after.Hits-before.Hits)
	}
}

func TestAdvanceEpochRefits(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()
	anchor := string(fixCons.Anchors()[3].Host.ID)

	m0, err := c.Model(ctx, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Epoch != 0 {
		t.Errorf("first epoch = %d", m0.Epoch)
	}
	if e := srv.AdvanceEpoch(); e != 1 {
		t.Fatalf("AdvanceEpoch = %d", e)
	}
	m1, err := c.Model(ctx, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Epoch != 1 {
		t.Errorf("post-advance epoch = %d", m1.Epoch)
	}
	// Same world, same landmark: the refitted line is identical.
	if m1.SlopeMsPerKm != m0.SlopeMsPerKm || m1.InterceptMs != m0.InterceptMs {
		t.Errorf("refit changed the model: %+v vs %+v", m1, m0)
	}
	if fits := srv.Metrics().ModelCache.Fits; fits != 1 {
		t.Errorf("fits after reset = %d, want 1 (stats reset with the epoch)", fits)
	}
}

func TestReportUploadAndValidation(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	anchor := fixCons.Anchors()[1]
	rep := Report{
		Client: "test-client",
		Target: "vpn-X-0001",
		Samples: []ReportSample{
			{LandmarkID: string(anchor.Host.ID), RTTms: 42.5},
		},
	}
	if err := c.Upload(context.Background(), rep); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range srv.Reports() {
		if r.Client == "test-client" && len(r.Samples) == 1 && r.Samples[0].RTTms == 42.5 {
			found = true
		}
	}
	if !found {
		t.Error("uploaded report not stored")
	}

	// Validation failures.
	bad := []Report{
		{Client: "", Samples: rep.Samples}, // no client
		{Client: "x"},                      // no samples
		{Client: "x", Samples: []ReportSample{{LandmarkID: string(anchor.Host.ID), RTTms: -1}}}, // bad RTT
		{Client: "x", Samples: []ReportSample{{LandmarkID: "bogus", RTTms: 5}}},                 // unknown landmark
		{Client: "x", Seq: -2, Samples: rep.Samples},                                            // negative seq
	}
	for i, r := range bad {
		if err := c.Upload(context.Background(), r); err == nil {
			t.Errorf("bad report %d accepted", i)
		}
	}
}

func TestReportExactlyOnce(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	anchor := fixCons.Anchors()[1]
	rep := Report{
		Client:  "dedup-client",
		Seq:     7,
		Samples: []ReportSample{{LandmarkID: string(anchor.Host.ID), RTTms: 10}},
	}
	// Upload the same (client, seq) three times — a shed-and-retry
	// pattern; the ledger must hold exactly one copy.
	for i := 0; i < 3; i++ {
		if err := c.Upload(context.Background(), rep); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	n := 0
	for _, r := range srv.Reports() {
		if r.Client == "dedup-client" && r.Seq == 7 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("ledgered %d copies, want exactly 1", n)
	}
	if d := srv.Metrics().DuplicateReports; d != 2 {
		t.Errorf("duplicate count = %d, want 2", d)
	}
	// A different seq from the same client is a new report.
	rep.Seq = 8
	if err := c.Upload(context.Background(), rep); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().ReportsLedgered; got != 2 {
		t.Errorf("ledger size = %d, want 2", got)
	}
}

func TestMethodEnforcement(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/landmarks/phase1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to phase1: %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET to report: %d", resp2.StatusCode)
	}
}

func TestReportBodyLimit(t *testing.T) {
	ts, _ := testServer(t)
	huge := strings.NewReader(`{"client":"x","samples":[` + strings.Repeat(`{"landmark_id":"a","rtt_ms":1},`, 100000) + `]}`)
	resp, err := http.Post(ts.URL+"/v1/report", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Error("oversized report accepted")
	}
}

func TestAdmissionSheds(t *testing.T) {
	ts, srv := testServerCfg(t, Config{Seed: 31, MaxInflight: 1})
	// Occupy the single admission slot with a report upload whose body
	// never finishes arriving until we say so.
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/report", pr)
		if err != nil {
			errc <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait until the slot is actually held.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Endpoints["report"].Requests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("report request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/landmarks/phase1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Ops endpoints bypass admission even while the server is full.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("metrics under load: %d", mresp.StatusCode)
	}
	if shed := srv.Metrics().Endpoints["phase1"].Shed; shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}

	// Release the slot; the held upload finishes normally.
	if _, err := pw.Write([]byte(`{"client":"x","samples":[{"landmark_id":"` +
		string(fixCons.Anchors()[0].Host.ID) + `","rtt_ms":5}]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if srv.Metrics().ReportsLedgered != 1 {
		t.Error("held report not ledgered after release")
	}
}

func TestDrainWaitsForInflightReports(t *testing.T) {
	ts, srv := testServer(t)
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/report", pr)
		if err != nil {
			errc <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Endpoints["report"].Requests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("report request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginShutdown()
	// New measurement-path work is refused…
	resp, err := http.Get(ts.URL + "/v1/landmarks/phase1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp.StatusCode)
	}
	// …while Drain waits for the in-flight batch.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned %v with a report still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := pw.Write([]byte(`{"client":"drainer","samples":[{"landmark_id":"` +
		string(fixCons.Anchors()[0].Host.ID) + `","rtt_ms":5}]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The admitted batch was ledgered before Drain returned.
	found := false
	for _, r := range srv.Reports() {
		if r.Client == "drainer" {
			found = true
		}
	}
	if !found {
		t.Error("in-flight report lost across drain")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	c := client(ts)
	ctx := context.Background()
	if _, err := c.Phase1Landmarks(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(ctx, string(fixCons.Anchors()[0].Host.ID)); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["phase1"].Requests != 1 {
		t.Errorf("phase1 requests = %d", m.Endpoints["phase1"].Requests)
	}
	if m.Endpoints["model"].Requests != 1 {
		t.Errorf("model requests = %d", m.Endpoints["model"].Requests)
	}
	if m.ModelCache.Fits < 1 {
		t.Error("no fits recorded")
	}
	if m.Endpoints["phase1"].P50Ms <= 0 {
		t.Error("no latency recorded for phase1")
	}
	if m.MaxInflight != DefaultMaxInflight {
		t.Errorf("max_inflight = %d", m.MaxInflight)
	}
}

func TestEndToEndTwoPhaseOverHTTP(t *testing.T) {
	// A client walks the full §4.1 protocol over the wire: phase 1 →
	// deduce continent → phase 2 → fetch a model → upload results.
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()

	p1, err := c.Phase1Landmarks(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	// Pretend the lowest simulated RTT came from a European anchor.
	continent := "Europe"
	p2, err := c.Phase2Landmarks(ctx, continent, 5, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	var samples []ReportSample
	for _, lm := range p2 {
		m, err := c.Model(ctx, lm.ID)
		if err != nil {
			t.Fatalf("model for %s: %v", lm.ID, err)
		}
		_ = m
		samples = append(samples, ReportSample{LandmarkID: lm.ID, RTTms: 30})
	}
	if err := c.Upload(ctx, Report{Client: "e2e", Samples: samples}); err != nil {
		t.Fatal(err)
	}
	if n := len(srv.Reports()); n == 0 {
		t.Error("no reports stored")
	}
	_ = p1
}

func TestRemoteTwoPhase(t *testing.T) {
	ts, srv := testServer(t)
	c := client(ts)
	ctx := context.Background()

	// A target in Berlin measured via HTTP-served landmarks.
	net := fixCons.Net()
	from := netsim.HostID("remote-tp-berlin")
	if net.Host(from) == nil {
		if err := net.AddHost(&netsim.Host{ID: from, Loc: geoPoint(52.52, 13.405)}); err != nil {
			t.Fatal(err)
		}
	}
	tool := &measure.CLITool{Net: net}
	res, err := RemoteTwoPhase(ctx, c, tool, from, 10, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Continent.String() != "Europe" {
		t.Errorf("continent = %v", res.Continent)
	}
	if len(res.Phase2) == 0 {
		t.Error("no phase-2 samples")
	}
	if len(res.Phase2) > 10 {
		t.Errorf("phase 2 oversubscribed: %d", len(res.Phase2))
	}
	if !res.Accepted {
		t.Error("report not acknowledged")
	}
	// Every phase-2 landmark came with its delay-distance model.
	if len(res.Models) != len(res.Phase2) {
		t.Errorf("models = %d, phase-2 samples = %d", len(res.Models), len(res.Phase2))
	}
	for _, s := range res.Phase2 {
		m, ok := res.Models[string(s.LandmarkID)]
		if !ok {
			t.Errorf("no model for %s", s.LandmarkID)
			continue
		}
		if m.SlopeMsPerKm < 1.0/200-1e-12 {
			t.Errorf("model for %s faster than baseline", s.LandmarkID)
		}
	}
	// The report landed on the server under the campaign seq.
	found := false
	for _, r := range srv.Reports() {
		if r.Client == string(from) && r.Seq == 1 {
			found = true
		}
	}
	if !found {
		t.Error("remote run did not upload its report")
	}
	// The measurements are usable by algorithms.
	ms := res.Measurements()
	for _, m := range ms {
		if !m.Landmark.Valid() || m.RTTms <= 0 {
			t.Fatalf("bad measurement %+v", m)
		}
	}
}

func TestJSONShapes(t *testing.T) {
	// The wire format is part of the API; lock the field names.
	b, _ := json.Marshal(LandmarkInfo{ID: "a", Addr: "192.0.2.1", Lat: 1, Lon: 2, Continent: "Europe", Anchor: true})
	for _, key := range []string{`"id"`, `"addr"`, `"lat"`, `"lon"`, `"continent"`, `"anchor"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("LandmarkInfo JSON missing %s: %s", key, b)
		}
	}
	b, _ = json.Marshal(ModelInfo{LandmarkID: "a"})
	if !strings.Contains(string(b), `"slope_ms_per_km"`) {
		t.Errorf("ModelInfo JSON: %s", b)
	}
	b, _ = json.Marshal(Report{Client: "c", Seq: 3})
	if !strings.Contains(string(b), `"seq"`) {
		t.Errorf("Report JSON missing seq: %s", b)
	}
}

func geoPoint(lat, lon float64) geo.Point { return geo.Point{Lat: lat, Lon: lon} }
