package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"activegeo/internal/geo"
)

func newTestNet(t testing.TB) *Network {
	t.Helper()
	n := New(1)
	hosts := []*Host{
		{ID: "fra", Loc: geo.Point{Lat: 50.11, Lon: 8.68}},
		{ID: "ams", Loc: geo.Point{Lat: 52.37, Lon: 4.89}},
		{ID: "nyc", Loc: geo.Point{Lat: 40.71, Lon: -74.01}},
		{ID: "syd", Loc: geo.Point{Lat: -33.87, Lon: 151.21}},
		{ID: "pek", Loc: geo.Point{Lat: 39.90, Lon: 116.40}},
		{ID: "fij", Loc: geo.Point{Lat: -18.14, Lon: 178.44}},
		{ID: "noum", Loc: geo.Point{Lat: -22.27, Lon: 166.44}},
	}
	for _, h := range hosts {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestAddHostValidation(t *testing.T) {
	n := New(1)
	if err := n.AddHost(&Host{ID: "", Loc: geo.Point{}}); err == nil {
		t.Error("empty ID should fail")
	}
	if err := n.AddHost(&Host{ID: "x", Loc: geo.Point{Lat: 99, Lon: 0}}); err == nil {
		t.Error("invalid location should fail")
	}
	if err := n.AddHost(&Host{ID: "a", Loc: geo.Point{Lat: 50.11, Lon: 8.68}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost(&Host{ID: "a", Loc: geo.Point{Lat: 50.11, Lon: 8.68}}); err == nil {
		t.Error("duplicate ID should fail")
	}
}

func TestCountryDerivedFromLocation(t *testing.T) {
	n := newTestNet(t)
	if c := n.Host("fra").Country; c != "de" {
		t.Errorf("Frankfurt country = %q, want de", c)
	}
	if c := n.Host("pek").Country; c != "cn" {
		t.Errorf("Beijing country = %q, want cn", c)
	}
}

func TestPhysicalFloor(t *testing.T) {
	n := newTestNet(t)
	ids := []HostID{"fra", "ams", "nyc", "syd", "pek", "fij"}
	rng := rand.New(rand.NewSource(2))
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			d := geo.DistanceKm(n.Host(a).Loc, n.Host(b).Loc)
			floor := 2 * d / geo.BaselineSpeedKmPerMs
			base, err := n.BaseRTTMs(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if base < floor {
				t.Errorf("%s→%s base RTT %.2f below physical floor %.2f", a, b, base, floor)
			}
			for i := 0; i < 20; i++ {
				s, err := n.SampleRTTMs(a, b, rng)
				if err != nil {
					t.Fatal(err)
				}
				if s < floor {
					t.Errorf("%s→%s sample %.2f below floor %.2f", a, b, s, floor)
				}
				if s < base {
					t.Errorf("%s→%s sample %.2f below base %.2f", a, b, s, base)
				}
			}
		}
	}
}

func TestBaseRTTDeterministic(t *testing.T) {
	a := newTestNet(t)
	b := newTestNet(t)
	v1, _ := a.BaseRTTMs("fra", "syd")
	v2, _ := b.BaseRTTMs("fra", "syd")
	if v1 != v2 {
		t.Errorf("same seed, different base RTT: %f vs %f", v1, v2)
	}
	// Different seed should (almost surely) give a different inflation.
	c := New(99)
	for _, h := range a.Hosts() {
		hh := *h
		hh.FilteredPorts = nil
		_ = c.AddHost(&hh)
	}
	v3, _ := c.BaseRTTMs("fra", "syd")
	if v1 == v3 {
		t.Errorf("different seeds produced identical RTT %f", v1)
	}
}

func TestBaseRTTSymmetric(t *testing.T) {
	n := newTestNet(t)
	ab, _ := n.BaseRTTMs("fra", "nyc")
	ba, _ := n.BaseRTTMs("nyc", "fra")
	if ab != ba {
		t.Errorf("asymmetric base RTT: %f vs %f", ab, ba)
	}
}

func TestRTTOrderingRoughlyByDistance(t *testing.T) {
	n := newTestNet(t)
	near, _ := n.BaseRTTMs("fra", "ams") // ~360 km
	far, _ := n.BaseRTTMs("fra", "syd")  // ~16500 km
	if near >= far {
		t.Errorf("Frankfurt-Amsterdam (%f) should be faster than Frankfurt-Sydney (%f)", near, far)
	}
	if near < 3 || near > 60 {
		t.Errorf("intra-European RTT %f ms implausible", near)
	}
	if far < 160 || far > 1200 {
		t.Errorf("Europe-Australia RTT %f ms implausible", far)
	}
}

func TestCongestedRegionsHaveMoreJitter(t *testing.T) {
	n := newTestNet(t)
	rng := rand.New(rand.NewSource(5))
	spread := func(a, b HostID) float64 {
		base, _ := n.BaseRTTMs(a, b)
		var over float64
		const k = 400
		for i := 0; i < k; i++ {
			s, _ := n.SampleRTTMs(a, b, rng)
			over += s - base
		}
		return over / k
	}
	eu := spread("fra", "ams")
	cn := spread("fra", "pek")
	if cn <= eu {
		t.Errorf("China path mean excess %.2f should exceed intra-EU %.2f", cn, eu)
	}
}

func TestIslandHubRouting(t *testing.T) {
	n := newTestNet(t)
	// Fiji ↔ New Caledonia are ~1300 km apart but route via a hub
	// (Sydney), so their base RTT must reflect a much longer path.
	d := geo.DistanceKm(n.Host("fij").Loc, n.Host("noum").Loc)
	rtt, _ := n.BaseRTTMs("fij", "noum")
	directFloor := 2 * d / geo.BaselineSpeedKmPerMs
	if rtt < 2.5*directFloor {
		t.Errorf("island pair RTT %.1f ms too close to direct floor %.1f ms — hub routing not applied", rtt, directFloor)
	}
}

func TestPingRespectsICMPBlocking(t *testing.T) {
	n := New(1)
	_ = n.AddHost(&Host{ID: "open", Loc: geo.Point{Lat: 50, Lon: 8}})
	_ = n.AddHost(&Host{ID: "blocked", Loc: geo.Point{Lat: 51, Lon: 9}, BlocksICMP: true})
	rng := rand.New(rand.NewSource(1))
	if _, err := n.Ping("open", "blocked", rng); err != ErrICMPBlocked {
		t.Errorf("ping to blocked host: err = %v, want ErrICMPBlocked", err)
	}
	if _, err := n.Ping("blocked", "open", rng); err != nil {
		t.Errorf("ping from ICMP-blocking host should work: %v", err)
	}
}

func TestTCPConnectPortFiltering(t *testing.T) {
	n := New(1)
	_ = n.AddHost(&Host{ID: "a", Loc: geo.Point{Lat: 50, Lon: 8}})
	_ = n.AddHost(&Host{ID: "b", Loc: geo.Point{Lat: 51, Lon: 9},
		FilteredPorts: map[int]bool{9999: true}})
	rng := rand.New(rand.NewSource(1))
	if _, err := n.TCPConnect("a", "b", 9999, rng); err != ErrPortFiltered {
		t.Errorf("filtered port: err = %v", err)
	}
	if _, err := n.TCPConnect("a", "b", 80, rng); err != nil {
		t.Errorf("port 80 should work: %v", err)
	}
}

func TestTraceroute(t *testing.T) {
	n := New(1)
	_ = n.AddHost(&Host{ID: "ok", Loc: geo.Point{Lat: 50, Lon: 8}})
	_ = n.AddHost(&Host{ID: "drop", Loc: geo.Point{Lat: 51, Lon: 9}, DropsTimeExceeded: true})
	if ok, _ := n.CanTraceroute("ok"); !ok {
		t.Error("traceroute through normal host should work")
	}
	if ok, _ := n.CanTraceroute("drop"); ok {
		t.Error("traceroute through dropping host should fail")
	}
	if _, err := n.CanTraceroute("missing"); err != ErrUnknownHost {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownHostErrors(t *testing.T) {
	n := newTestNet(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := n.BaseRTTMs("fra", "nope"); err != ErrUnknownHost {
		t.Errorf("err = %v", err)
	}
	if _, err := n.Ping("nope", "fra", rng); err != ErrUnknownHost {
		t.Errorf("err = %v", err)
	}
}

func TestMinOfSamplesReducesNoise(t *testing.T) {
	n := newTestNet(t)
	rng := rand.New(rand.NewSource(9))
	single, _ := n.SampleRTTMs("fra", "pek", rng)
	best, _ := n.MinOfSamples("fra", "pek", 10, rng)
	base, _ := n.BaseRTTMs("fra", "pek")
	if best < base {
		t.Errorf("min of samples %.2f below base %.2f", best, base)
	}
	_ = single // single sample may or may not exceed best; just exercise the path
	if _, err := n.MinOfSamples("fra", "pek", 0, rng); err != nil {
		t.Errorf("k=0 should clamp to 1: %v", err)
	}
}

func TestTCPConnectLossRetransmission(t *testing.T) {
	// A congested (poor-quality) path has ~2% loss: over many connects,
	// some must show the ≥1 s SYN retransmission penalty, and none may
	// be below base.
	n := newTestNet(t)
	rng := rand.New(rand.NewSource(77))
	base, _ := n.BaseRTTMs("fra", "pek")
	spiked, failures := 0, 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		rtt, err := n.TCPConnect("fra", "pek", 80, rng)
		if err == ErrTimeout {
			failures++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if rtt < base {
			t.Fatalf("connect %f below base %f", rtt, base)
		}
		if rtt >= base+1000 {
			spiked++
		}
	}
	if spiked == 0 {
		t.Error("no SYN retransmission penalties observed on a lossy path")
	}
	// Full timeouts require 4 consecutive losses: essentially never at 2%.
	if failures > trials/100 {
		t.Errorf("%d timeouts out of %d", failures, trials)
	}
	// Clean European paths should almost never spike.
	spiked = 0
	for i := 0; i < trials; i++ {
		rtt, err := n.TCPConnect("fra", "ams", 80, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rtt >= 1000 {
			spiked++
		}
	}
	if spiked > trials/100 {
		t.Errorf("clean path spiked %d/%d times", spiked, trials)
	}
}

func TestCongestionEpisode(t *testing.T) {
	n := newTestNet(t)
	rng := rand.New(rand.NewSource(13))
	mean := func() float64 {
		var s float64
		const k = 300
		for i := 0; i < k; i++ {
			v, err := n.SampleRTTMs("fra", "ams", rng)
			if err != nil {
				t.Fatal(err)
			}
			s += v
		}
		return s / k
	}
	before := mean()
	stop := n.StartCongestion(CongestionEpisode{
		Area:              geo.Cap{Center: geo.Point{Lat: 50.11, Lon: 8.68}, RadiusKm: 300},
		ExtraBaseMs:       40,
		ExtraJitterMeanMs: 20,
	})
	during := mean()
	if during < before+30 {
		t.Errorf("congestion did not raise RTTs: %.1f → %.1f", before, during)
	}
	// Paths with no endpoint in the area are unaffected.
	unrelatedBefore, _ := n.BaseRTTMs("nyc", "syd")
	var s float64
	for i := 0; i < 300; i++ {
		v, _ := n.SampleRTTMs("nyc", "syd", rng)
		s += v
	}
	if s/300 > unrelatedBefore+200 {
		t.Errorf("unrelated path inflated: mean %.1f vs base %.1f", s/300, unrelatedBefore)
	}
	stop()
	stop() // idempotent
	after := mean()
	if after > before+15 {
		t.Errorf("congestion persisted after stop: %.1f → %.1f", before, after)
	}
}

func TestCongestionCausesUnderestimation(t *testing.T) {
	// The §5.1 motivation, reproduced as failure injection: congestion
	// near a landmark during calibration biases its observed RTTs up, so
	// the landmark's later (clean) measurements of a target look "too
	// fast" for the calibrated model — an underestimating disk. Here we
	// verify the raw effect: calibrated minimum RTT under congestion
	// exceeds the clean minimum.
	n := newTestNet(t)
	rng := rand.New(rand.NewSource(14))
	clean, err := n.MinOfSamples("fra", "nyc", 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	stop := n.StartCongestion(CongestionEpisode{
		Area:        geo.Cap{Center: geo.Point{Lat: 50.11, Lon: 8.68}, RadiusKm: 300},
		ExtraBaseMs: 60,
	})
	defer stop()
	congested, err := n.MinOfSamples("fra", "nyc", 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if congested < clean+40 {
		t.Errorf("congested calibration min %.1f not clearly above clean %.1f", congested, clean)
	}
}

func TestHostsSorted(t *testing.T) {
	n := newTestNet(t)
	hs := n.Hosts()
	for i := 1; i < len(hs); i++ {
		if hs[i-1].ID >= hs[i].ID {
			t.Fatal("Hosts() not sorted")
		}
	}
}

func TestRTTQuickProperties(t *testing.T) {
	n := newTestNet(t)
	ids := []HostID{"fra", "ams", "nyc", "syd", "pek", "fij", "noum"}
	f := func(i, j uint8, seed int64) bool {
		a, b := ids[int(i)%len(ids)], ids[int(j)%len(ids)]
		rng := rand.New(rand.NewSource(seed))
		s, err := n.SampleRTTMs(a, b, rng)
		if err != nil {
			return false
		}
		// Sanity: positive, finite, under 30 seconds.
		return s > 0 && s < 30000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSampleRTT(b *testing.B) {
	n := newTestNet(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = n.SampleRTTMs("fra", "syd", rng)
	}
}
