package netsim

// Fault injection: seeded, deterministic per-path failure models layered
// on top of the delay simulator, reproducing the conditions the paper's
// world-scale measurement campaign actually faced (§2, §5): probes
// vanish, landmarks go dark for a while, proxies hang up mid-session,
// and congested paths inflate tails far beyond the queueing model.
//
// Determinism contract: everything structural (which hosts have outage
// windows, and when) is a pure function of (network seed, FaultConfig,
// host ID) via the same HashID stream derivation the rest of the
// simulator uses, and everything per-event (a lost probe, a tail spike,
// a session disconnect) draws from the caller's *rand.Rand — the
// per-entity stream seeded by measure.StreamSeed. Two runs with the
// same seed and the same FaultConfig are therefore byte-identical at
// any concurrency; with the zero FaultConfig the fault layer draws
// nothing and the simulator behaves exactly as before.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// FaultConfig parameterizes the fault-injection layer. The zero value
// disables every model; any positive field arms its model.
type FaultConfig struct {
	// ProbeLoss is an extra per-probe blackhole probability applied to
	// every Probe call on top of the path's natural SYN loss: the whole
	// handshake (all retransmissions) disappears and the prober gives
	// up after LostProbeTimeoutMs of simulated waiting.
	ProbeLoss float64

	// OutageFraction is the fraction of hosts that suffer one outage
	// window per campaign, during which every probe to them fails.
	// Which hosts, and when, is derived from the network seed and the
	// host ID — not from the measurement stream — so the same landmarks
	// are dark for every proxy in a run, like a real landmark going
	// offline mid-campaign.
	OutageFraction float64
	// OutageMeanMs is the mean outage duration in simulated
	// milliseconds (DefaultOutageMeanMs when 0).
	OutageMeanMs float64
	// HorizonMs is the campaign window within which outages start and
	// session disconnects occur (DefaultHorizonMs when 0).
	HorizonMs float64

	// DisconnectProb is the per-session probability that a proxy hangs
	// up partway through a measurement campaign; the disconnect time is
	// drawn uniformly over the horizon from the session's own stream.
	DisconnectProb float64

	// SpikeProb adds transient tail inflation: with this per-probe
	// probability the measured RTT gains an exponential spike of mean
	// SpikeMeanMs (DefaultSpikeMeanMs when 0) — congestion bursts that
	// survive min-of-k and break minimum-speed assumptions.
	SpikeProb   float64
	SpikeMeanMs float64
}

// Default fault-shape parameters, used when the corresponding
// FaultConfig field is zero but its model is armed.
const (
	DefaultOutageMeanMs = 20000.0
	DefaultHorizonMs    = 60000.0
	DefaultSpikeMeanMs  = 400.0
	// LostProbeTimeoutMs is the simulated time a prober spends waiting
	// before declaring a blackholed probe lost.
	LostProbeTimeoutMs = 3000.0
)

// Enabled reports whether any fault model is armed.
func (c FaultConfig) Enabled() bool {
	return c.ProbeLoss > 0 || c.OutageFraction > 0 || c.DisconnectProb > 0 || c.SpikeProb > 0
}

// Signature returns a deterministic fingerprint of the fault ledger —
// FNV-1a over every field's bit pattern. Verdicts measured under one
// fault configuration are stale under another, so incremental consumers
// fold this into their per-server dependency signatures. The zero config
// has its own (stable) signature, distinct from any armed one.
func (c FaultConfig) Signature() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range []float64{
		c.ProbeLoss, c.OutageFraction, c.OutageMeanMs, c.HorizonMs,
		c.DisconnectProb, c.SpikeProb, c.SpikeMeanMs,
	} {
		h ^= math.Float64bits(v)
		h *= prime
	}
	return h
}

func (c FaultConfig) outageMean() float64 {
	if c.OutageMeanMs > 0 {
		return c.OutageMeanMs
	}
	return DefaultOutageMeanMs
}

// Horizon returns the campaign window in effect.
func (c FaultConfig) Horizon() float64 {
	if c.HorizonMs > 0 {
		return c.HorizonMs
	}
	return DefaultHorizonMs
}

func (c FaultConfig) spikeMean() float64 {
	if c.SpikeMeanMs > 0 {
		return c.SpikeMeanMs
	}
	return DefaultSpikeMeanMs
}

// DefaultFaults is the documented default fault profile at a given
// probe-loss rate: loss plus proportionate outages, disconnects and
// tail spikes, the mix the robustness experiment sweeps.
func DefaultFaults(loss float64) FaultConfig {
	if loss <= 0 {
		return FaultConfig{}
	}
	return FaultConfig{
		ProbeLoss:      loss,
		OutageFraction: loss / 2,
		DisconnectProb: loss / 4,
		SpikeProb:      loss,
	}
}

// Fault-injection errors. They wrap through the measurement layer with
// %w, so errors.Is classification survives.
var (
	// ErrProbeLost is an injected per-probe blackhole.
	ErrProbeLost = errors.New("netsim: probe lost (injected fault)")
	// ErrHostOutage is a probe sent to a host inside its outage window.
	ErrHostOutage = errors.New("netsim: host in outage window (injected fault)")
	// ErrProxyDisconnected is a proxy that hung up mid-session.
	ErrProxyDisconnected = errors.New("netsim: proxy disconnected mid-session (injected fault)")
)

// Transient reports whether a measurement error is worth retrying:
// injected probe loss, an outage window (the host may come back), or a
// natural full-handshake timeout. Structural failures (filtered port,
// unknown host, mid-session disconnect) are not transient.
func Transient(err error) bool {
	return errors.Is(err, ErrProbeLost) ||
		errors.Is(err, ErrHostOutage) ||
		errors.Is(err, ErrTimeout)
}

// Clock is a simulated per-session clock, the time base for outage
// windows, retry backoff and deadline budgets. It is advanced by the
// measured RTTs and injected waits, never by the wall clock, so a
// session's timeline is a pure function of its random stream. A Clock
// is single-session state and is not safe for concurrent use; nil is
// valid and pins the session to time zero.
type Clock struct {
	ms float64
}

// NowMs returns the current simulated session time in milliseconds.
func (c *Clock) NowMs() float64 {
	if c == nil {
		return 0
	}
	return c.ms
}

// Advance moves the clock forward by d milliseconds (non-positive
// deltas are ignored: simulated time never runs backwards).
func (c *Clock) Advance(d float64) {
	if c == nil || d <= 0 {
		return
	}
	c.ms += d
}

// SetFaults arms (or, with the zero config, disarms) the fault layer.
func (n *Network) SetFaults(cfg FaultConfig) {
	n.mu.Lock()
	n.faults = cfg
	n.mu.Unlock()
}

// Faults returns the active fault configuration.
func (n *Network) Faults() FaultConfig {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.faults
}

// Outage returns the host's outage window [startMs, endMs) in campaign
// time, if it has one. The window is a pure function of (network seed,
// fault config, host ID): derived through the HashID stream like every
// other per-host property, independent of measurement order.
func (n *Network) Outage(id HostID) (startMs, endMs float64, ok bool) {
	cfg := n.Faults()
	if cfg.OutageFraction <= 0 {
		return 0, 0, false
	}
	s := HashID(HostID(fmt.Sprintf("outage|%d|%s", n.seed, id)))
	r := rand.New(rand.NewSource(int64(s)))
	if r.Float64() >= cfg.OutageFraction {
		return 0, 0, false
	}
	startMs = r.Float64() * cfg.Horizon()
	dur := (0.5 + r.Float64()) * cfg.outageMean()
	return startMs, startMs + dur, true
}

// HostDown reports whether the host is inside its outage window at the
// given campaign time.
func (n *Network) HostDown(id HostID, atMs float64) bool {
	start, end, ok := n.Outage(id)
	return ok && atMs >= start && atMs < end
}

// SessionDisconnectMs draws, from the session's stream, the campaign
// time at which a proxy session will be cut (ok=false: it survives the
// whole campaign). One draw per armed session, so per-entity streams
// stay aligned across concurrency widths.
func (n *Network) SessionDisconnectMs(rng *rand.Rand) (atMs float64, ok bool) {
	cfg := n.Faults()
	if cfg.DisconnectProb <= 0 {
		return 0, false
	}
	if rng.Float64() >= cfg.DisconnectProb {
		return 0, false
	}
	return rng.Float64() * cfg.Horizon(), true
}

// Probe is the fault-aware measurement primitive: a TCPConnect that
// consults the armed fault models and advances the session clock by
// the simulated time the probe consumed. With the zero FaultConfig it
// draws exactly the same random sequence as TCPConnect, so runs with
// faults disabled are byte-identical to the pre-fault simulator; clk
// may be nil (the session is then pinned to campaign time zero and
// nothing advances).
func (n *Network) Probe(from, to HostID, port int, rng *rand.Rand, clk *Clock) (float64, error) {
	cfg := n.Faults()
	if at := clk.NowMs(); cfg.OutageFraction > 0 && n.HostDown(to, at) {
		clk.Advance(LostProbeTimeoutMs)
		return 0, fmt.Errorf("%s at t=%.0fms: %w", to, at, ErrHostOutage)
	}
	if cfg.ProbeLoss > 0 && rng.Float64() < cfg.ProbeLoss {
		clk.Advance(LostProbeTimeoutMs)
		return 0, fmt.Errorf("%s→%s: %w", from, to, ErrProbeLost)
	}
	rtt, err := n.TCPConnect(from, to, port, rng)
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			// A full SYN-retransmission cycle ran before the give-up:
			// 1s + 2s + … doubling once per allowed retry.
			clk.Advance(synRetransmitMs * ((1 << (maxSynRetries + 1)) - 1))
		}
		return 0, err
	}
	if cfg.SpikeProb > 0 && rng.Float64() < cfg.SpikeProb {
		rtt += rng.ExpFloat64() * cfg.spikeMean()
	}
	clk.Advance(rtt)
	return rtt, nil
}
