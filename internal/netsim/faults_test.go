package netsim

import (
	"errors"
	"math/rand"
	"testing"

	"activegeo/internal/geo"
)

func faultNet(t *testing.T, seed int64) *Network {
	t.Helper()
	n := New(seed)
	hosts := []struct {
		id  HostID
		loc geo.Point
	}{
		{"ff-client", geo.Point{Lat: 50.11, Lon: 8.68}},
		{"ff-lm-paris", geo.Point{Lat: 48.86, Lon: 2.35}},
		{"ff-lm-nyc", geo.Point{Lat: 40.71, Lon: -74.01}},
		{"ff-lm-tokyo", geo.Point{Lat: 35.68, Lon: 139.65}},
	}
	for _, h := range hosts {
		if err := n.AddHost(&Host{ID: h.id, Loc: h.loc}); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestProbeDisabledMatchesTCPConnect: with the zero FaultConfig, Probe
// must draw the exact random sequence TCPConnect draws — the byte-
// identical-replay guarantee the audit regression test depends on.
func TestProbeDisabledMatchesTCPConnect(t *testing.T) {
	n := faultNet(t, 11)
	r1 := rand.New(rand.NewSource(99))
	r2 := rand.New(rand.NewSource(99))
	clk := &Clock{}
	for i := 0; i < 50; i++ {
		a, errA := n.TCPConnect("ff-client", "ff-lm-paris", 80, r1)
		b, errB := n.Probe("ff-client", "ff-lm-paris", 80, r2, clk)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("probe %d: TCPConnect (%v, %v) != Probe (%v, %v)", i, a, errA, b, errB)
		}
	}
	if clk.NowMs() <= 0 {
		t.Error("clock did not advance across successful probes")
	}
}

// TestProbeDeterministicWithFaults: with faults armed, two identical
// streams see identical fault sequences and identical RTTs.
func TestProbeDeterministicWithFaults(t *testing.T) {
	cfg := FaultConfig{ProbeLoss: 0.3, OutageFraction: 0.4, SpikeProb: 0.2}
	run := func() ([]float64, []string, float64) {
		n := faultNet(t, 11)
		n.SetFaults(cfg)
		rng := rand.New(rand.NewSource(7))
		clk := &Clock{}
		var rtts []float64
		var errs []string
		for i := 0; i < 60; i++ {
			v, err := n.Probe("ff-client", "ff-lm-nyc", 80, rng, clk)
			rtts = append(rtts, v)
			if err != nil {
				errs = append(errs, err.Error())
			}
		}
		return rtts, errs, clk.NowMs()
	}
	r1, e1, t1 := run()
	r2, e2, t2 := run()
	if len(e1) == 0 {
		t.Fatal("no injected faults at 30% loss over 60 probes — fault layer inert")
	}
	if t1 != t2 || len(e1) != len(e2) {
		t.Fatalf("fault replay diverged: %v/%d vs %v/%d", t1, len(e1), t2, len(e2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("probe %d RTT diverged: %v vs %v", i, r1[i], r2[i])
		}
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("error %d diverged: %q vs %q", i, e1[i], e2[i])
		}
	}
}

// TestOutagePureFunction: outage windows depend only on (seed, config,
// host), never on measurement order or prior draws.
func TestOutagePureFunction(t *testing.T) {
	cfg := FaultConfig{OutageFraction: 0.5}
	n1 := faultNet(t, 23)
	n1.SetFaults(cfg)
	n2 := faultNet(t, 23)
	n2.SetFaults(cfg)
	ids := []HostID{"ff-lm-paris", "ff-lm-nyc", "ff-lm-tokyo", "ff-client"}
	anyOutage := false
	for _, id := range ids {
		s1, e1, ok1 := n1.Outage(id)
		// Interleave unrelated draws on n2 before asking: must not matter.
		r := rand.New(rand.NewSource(1))
		_, _ = n2.SampleRTTMs("ff-client", "ff-lm-nyc", r)
		s2, e2, ok2 := n2.Outage(id)
		if s1 != s2 || e1 != e2 || ok1 != ok2 {
			t.Errorf("host %s: outage (%v,%v,%v) vs (%v,%v,%v)", id, s1, e1, ok1, s2, e2, ok2)
		}
		if ok1 {
			anyOutage = true
			if e1 <= s1 || s1 < 0 || s1 >= cfg.Horizon() {
				t.Errorf("host %s: malformed window [%v,%v)", id, s1, e1)
			}
			if !n1.HostDown(id, (s1+e1)/2) {
				t.Errorf("host %s: not down inside its own window", id)
			}
			if n1.HostDown(id, e1+1) {
				t.Errorf("host %s: down after its window", id)
			}
		}
	}
	if !anyOutage {
		t.Error("no host drew an outage at fraction 0.5 — derivation suspect")
	}

	// A different seed must reshuffle the windows.
	n3 := faultNet(t, 24)
	n3.SetFaults(cfg)
	same := 0
	for _, id := range ids {
		s1, e1, ok1 := n1.Outage(id)
		s3, e3, ok3 := n3.Outage(id)
		if s1 == s3 && e1 == e3 && ok1 == ok3 {
			same++
		}
	}
	if same == len(ids) {
		t.Error("outage windows identical across different seeds")
	}
}

// TestProbeLossInjects: at high injected loss, probes fail with
// ErrProbeLost, charge simulated timeout, and are classified transient.
func TestProbeLossInjects(t *testing.T) {
	n := faultNet(t, 5)
	n.SetFaults(FaultConfig{ProbeLoss: 0.9})
	rng := rand.New(rand.NewSource(3))
	clk := &Clock{}
	lost := 0
	for i := 0; i < 40; i++ {
		_, err := n.Probe("ff-client", "ff-lm-paris", 80, rng, clk)
		if err != nil {
			if !errors.Is(err, ErrProbeLost) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			if !Transient(err) {
				t.Fatalf("injected loss must be transient: %v", err)
			}
			lost++
		}
	}
	if lost < 20 {
		t.Errorf("only %d/40 probes lost at 90%% injected loss", lost)
	}
	if clk.NowMs() < float64(lost)*LostProbeTimeoutMs {
		t.Errorf("clock %v did not charge %d lost-probe timeouts", clk.NowMs(), lost)
	}
}

// TestSessionDisconnectDraw: the disconnect fate is one draw per armed
// session, inside the horizon, and ErrProxyDisconnected is terminal.
func TestSessionDisconnectDraw(t *testing.T) {
	n := faultNet(t, 9)
	n.SetFaults(FaultConfig{DisconnectProb: 1.0})
	rng := rand.New(rand.NewSource(4))
	at, ok := n.SessionDisconnectMs(rng)
	if !ok {
		t.Fatal("probability 1.0 must disconnect")
	}
	if at < 0 || at >= n.Faults().Horizon() {
		t.Errorf("disconnect at %v outside horizon", at)
	}
	if Transient(ErrProxyDisconnected) {
		t.Error("a mid-session disconnect must not be classified transient")
	}
	n.SetFaults(FaultConfig{})
	if _, ok := n.SessionDisconnectMs(rng); ok {
		t.Error("disarmed config must never disconnect")
	}
}

// TestClockNilSafe: a nil clock pins the session to time zero.
func TestClockNilSafe(t *testing.T) {
	var clk *Clock
	if clk.NowMs() != 0 {
		t.Error("nil clock time != 0")
	}
	clk.Advance(100) // must not panic
	c := &Clock{}
	c.Advance(5)
	c.Advance(-3)
	if c.NowMs() != 5 {
		t.Errorf("clock = %v, want 5 (negative advance ignored)", c.NowMs())
	}
}

// TestDefaultFaults: the documented profile arms all four models in
// proportion to the loss rate, and zero loss disarms everything.
func TestDefaultFaults(t *testing.T) {
	if DefaultFaults(0).Enabled() {
		t.Error("DefaultFaults(0) must be disabled")
	}
	cfg := DefaultFaults(0.1)
	if !cfg.Enabled() || cfg.ProbeLoss != 0.1 || cfg.OutageFraction != 0.05 ||
		cfg.DisconnectProb != 0.025 || cfg.SpikeProb != 0.1 {
		t.Errorf("DefaultFaults(0.1) = %+v", cfg)
	}
}
