// Package netsim is the library's stand-in for the real Internet: a
// deterministic, seeded, world-scale network delay simulator.
//
// The geolocation algorithms consume only (distance, delay) calibration
// scatter and per-target RTT vectors, so the simulator's job is to
// reproduce the statistical shape of Internet round-trip times that the
// paper reports rather than any particular router topology:
//
//   - a hard physical floor — packets never travel faster than 200 km/ms
//     round trip (2/3 c in fiber);
//   - per-path "circuitousness": cables follow practical paths, and
//     routes are optimized for bandwidth rather than latency, adding a
//     path-specific multiplicative detour that persists between
//     measurements of the same pair;
//   - last-mile access delay per host (small for anchors in data centers,
//     larger for residential probes);
//   - queueing jitter and occasional large congestion spikes, heavier in
//     regions the paper calls out (China, parts of Africa, remote
//     islands), which is what breaks minimum-speed assumptions there;
//   - hub routing for sparsely connected territories: neighboring islands
//     are often connected only through a distant developed hub, which is
//     the paper's explanation for the odd long-distance confusions in its
//     Figure 23.
//
// All randomness is split in two: path properties are derived
// deterministically from the simulator seed and the host pair (stable
// across calls), while per-measurement noise comes from the caller's
// *rand.Rand so experiments can be replayed.
package netsim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"

	"activegeo/internal/geo"
	"activegeo/internal/worldmap"
)

// HostID identifies a host within one Network.
type HostID string

// Host is a simulated Internet host.
type Host struct {
	ID      HostID
	Addr    string // synthetic IPv4 address, for display and /24 grouping
	Loc     geo.Point
	Country string // ISO code; derived from Loc if empty at AddHost time

	ASN        int    // autonomous system number
	Prefix24   string // first three octets of Addr, e.g. "198.51.100"
	DataCenter string // data-center ID, "" if not in a known DC

	// Behavioral flags, mirroring §4.2's observations about proxies.
	BlocksICMP        bool // ignores ping
	DropsTimeExceeded bool // discards TTL-exceeded; no traceroute through it
	FilteredPorts     map[int]bool
	ListensHTTP       bool // TCP port 80 open (affects the web tool's 1-vs-2 RTT)

	// AccessDelayMs is the host's last-mile one-way delay contribution.
	AccessDelayMs float64
}

// Quality grades a territory's connectivity, controlling route inflation
// and congestion in the delay model.
type Quality int

// Connectivity grades.
const (
	QualityGood   Quality = iota // dense, competitive networks: EU, NA, developed Asia-Pacific
	QualityMedium                // moderately connected
	QualityPoor                  // sparse or congested: the paper's "moderately connected" regions
	QualityIsland                // reachable mainly through a remote hub
)

// wanOverheadMs is the fixed round-trip cost of leaving the metro area
// (provider edges, exchange points, serialization).
const wanOverheadMs = 3.0

// Errors returned by measurement primitives.
var (
	ErrUnknownHost     = errors.New("netsim: unknown host")
	ErrICMPBlocked     = errors.New("netsim: host ignores ICMP echo")
	ErrPortFiltered    = errors.New("netsim: destination port filtered")
	ErrNoTraceroute    = errors.New("netsim: time-exceeded packets dropped")
	ErrConnectionReset = errors.New("netsim: connection reset by intermediate router")
)

// Network is a simulated Internet.
type Network struct {
	mu    sync.RWMutex
	seed  int64
	hosts map[HostID]*Host

	// hubs are the well-connected exchange points used for hub routing.
	hubs []geo.Point

	// congestion holds active congestion episodes.
	congestion []CongestionEpisode

	// faults is the fault-injection configuration (zero = disabled);
	// see faults.go.
	faults FaultConfig
}

// CongestionEpisode is a transient regional overload: every path with
// an endpoint inside the area gets extra queueing. Komosny et al. (the
// paper's [28]) identify exactly this — congestion near a landmark
// during calibration — as the cause of bestline underestimation that
// CBG++'s baseline filter exists to catch.
type CongestionEpisode struct {
	Area geo.Cap
	// ExtraJitterMeanMs is added to the path's mean queueing jitter.
	ExtraJitterMeanMs float64
	// ExtraBaseMs is a standing queue: added to every affected sample.
	ExtraBaseMs float64
}

// StartCongestion activates an episode and returns a handle to stop it.
func (n *Network) StartCongestion(ep CongestionEpisode) (stop func()) {
	n.mu.Lock()
	n.congestion = append(n.congestion, ep)
	idx := len(n.congestion) - 1
	n.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			n.mu.Lock()
			defer n.mu.Unlock()
			// Mark dead rather than reslice: other handles hold indices.
			n.congestion[idx].ExtraJitterMeanMs = 0
			n.congestion[idx].ExtraBaseMs = 0
			n.congestion[idx].Area.RadiusKm = 0
		})
	}
}

// congestionFor sums the active episodes touching either endpoint.
func (n *Network) congestionFor(a, b *Host) (extraBase, extraJitter float64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, ep := range n.congestion {
		if ep.Area.RadiusKm <= 0 {
			continue
		}
		if ep.Area.Contains(a.Loc) || ep.Area.Contains(b.Loc) {
			extraBase += ep.ExtraBaseMs
			extraJitter += ep.ExtraJitterMeanMs
		}
	}
	return extraBase, extraJitter
}

// New creates an empty network with the given seed. The seed fixes all
// per-path properties; two networks with the same seed and hosts produce
// identical base delays.
func New(seed int64) *Network {
	return &Network{
		seed:  seed,
		hosts: make(map[HostID]*Host),
		hubs: []geo.Point{
			{Lat: 50.11, Lon: 8.68},    // Frankfurt
			{Lat: 52.37, Lon: 4.89},    // Amsterdam
			{Lat: 51.51, Lon: -0.13},   // London
			{Lat: 38.91, Lon: -77.04},  // Washington/Ashburn
			{Lat: 37.44, Lon: -122.16}, // Palo Alto
			{Lat: 1.35, Lon: 103.82},   // Singapore
			{Lat: 35.68, Lon: 139.65},  // Tokyo
			{Lat: -33.87, Lon: 151.21}, // Sydney
			{Lat: -23.55, Lon: -46.63}, // São Paulo
			{Lat: 25.20, Lon: 55.27},   // Dubai
			{Lat: -26.20, Lon: 28.05},  // Johannesburg
		},
	}
}

// Seed returns the network's seed.
func (n *Network) Seed() int64 { return n.seed }

// AddHost registers h. The country is derived from the location when not
// set. AddHost fails on duplicate or empty IDs.
func (n *Network) AddHost(h *Host) error {
	if h.ID == "" {
		return errors.New("netsim: empty host ID")
	}
	if !h.Loc.Valid() {
		return fmt.Errorf("netsim: host %s has invalid location %v", h.ID, h.Loc)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[h.ID]; dup {
		return fmt.Errorf("netsim: duplicate host %s", h.ID)
	}
	if h.Country == "" {
		if c := worldmap.Locate(h.Loc); c != nil {
			h.Country = c.Code
		}
	}
	if h.AccessDelayMs == 0 {
		h.AccessDelayMs = 1.0
	}
	n.hosts[h.ID] = h
	return nil
}

// RemoveHost deregisters the host with the given ID and reports whether
// it existed. Paths are stateless (derived from host IDs and the network
// seed), so removal needs no teardown beyond the map delete. The
// streaming audit's synthetic sources use this to provision hosts per
// batch and release them afterwards, keeping the network O(batch) rather
// than O(fleet); callers must not remove a host with measurements still
// in flight.
func (n *Network) RemoveHost(id HostID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[id]; !ok {
		return false
	}
	delete(n.hosts, id)
	return true
}

// Host returns the host with the given ID, or nil.
func (n *Network) Host(id HostID) *Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.hosts[id]
}

// Hosts returns all hosts sorted by ID.
func (n *Network) Hosts() []*Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// countryQuality returns the connectivity grade of a country code.
func countryQuality(code string) Quality {
	switch code {
	case "cn":
		// The paper (§2) singles out China: heavy congestion at
		// intermediate routers invalidates minimum-speed assumptions.
		return QualityPoor
	case "jp", "kr", "sg", "hk", "tw", "au", "nz":
		return QualityGood
	case "pn", "nf", "ki", "fm", "mh", "nr", "pw", "sb", "vu", "fj", "nc",
		"gu", "mp", "io", "cx", "xa", "tl", "pg", "mv", "fk", "gl", "pm",
		"sc", "km", "mu", "cv", "fo":
		return QualityIsland
	}
	c := worldmap.ByCode(code)
	if c == nil {
		return QualityMedium
	}
	switch c.Continent {
	case worldmap.Europe, worldmap.NorthAmerica:
		return QualityGood
	case worldmap.Africa:
		return QualityPoor
	case worldmap.Asia, worldmap.Oceania:
		return QualityMedium
	case worldmap.CentralAmerica, worldmap.SouthAmerica:
		return QualityMedium
	case worldmap.Australia:
		return QualityGood
	default:
		return QualityMedium
	}
}

// pathProfile captures the deterministic properties of one host pair.
type pathProfile struct {
	distKm      float64 // effective routed distance (may include hub detour)
	inflation   float64 // multiplicative detour factor ≥ 1.15
	jitterMean  float64 // mean of exponential queueing jitter, ms
	spikeProb   float64 // probability of a large congestion spike
	spikeMean   float64 // mean size of a spike, ms
	lossProb    float64 // per-packet loss probability
	accessDelay float64 // summed last-mile delay of both endpoints, ms (round trip)
}

// profile computes the deterministic path profile for a pair of hosts.
func (n *Network) profile(a, b *Host) pathProfile {
	d := geo.DistanceKm(a.Loc, b.Loc)
	qa, qb := countryQuality(a.Country), countryQuality(b.Country)

	// Hub routing: island or poorly connected territories in different
	// countries reach each other through the nearest hub, inflating the
	// effective routed distance — possibly enormously for neighbors.
	eff := d
	if a.Country != b.Country && (qa == QualityIsland || qb == QualityIsland) {
		hub := n.nearestHub(a.Loc)
		if qb == QualityIsland && qa != QualityIsland {
			hub = n.nearestHub(b.Loc)
		}
		viaHub := geo.DistanceKm(a.Loc, hub) + geo.DistanceKm(hub, b.Loc)
		if viaHub > eff {
			eff = viaHub
		}
	}

	// Deterministic per-pair randomness.
	u1, u2 := n.pairUniforms(a.ID, b.ID)

	// Route inflation: base by worst quality, plus a lognormal-ish tail.
	worst := qa
	if qb > worst {
		worst = qb
	}
	var base, spread float64
	switch worst {
	case QualityGood:
		// Dense competitive networks route consistently: inflation
		// clusters tightly, which is what makes sophisticated models
		// viable in Europe and North America (§2).
		base, spread = 1.17, 0.18
	case QualityMedium:
		base, spread = 1.40, 0.70
	case QualityPoor:
		base, spread = 1.60, 1.10
	default: // QualityIsland
		base, spread = 1.50, 0.90
	}
	inflation := base + spread*u1*u1 // quadratic: most paths near base, a tail of detours

	// Queueing characteristics by the more congested endpoint.
	var jitterMean, spikeProb, spikeMean, lossProb float64
	switch worst {
	case QualityGood:
		jitterMean, spikeProb, spikeMean, lossProb = 2, 0.01, 60, 0.001
	case QualityMedium:
		jitterMean, spikeProb, spikeMean, lossProb = 8, 0.03, 120, 0.005
	case QualityPoor:
		jitterMean, spikeProb, spikeMean, lossProb = 25, 0.08, 250, 0.02
	default:
		jitterMean, spikeProb, spikeMean, lossProb = 15, 0.05, 180, 0.015
	}
	// Per-pair variation in jitter (some paths are chronically congested).
	jitterMean *= 0.5 + 1.5*u2

	return pathProfile{
		distKm:      eff,
		inflation:   inflation,
		jitterMean:  jitterMean,
		spikeProb:   spikeProb,
		spikeMean:   spikeMean,
		lossProb:    lossProb,
		accessDelay: 2 * (a.AccessDelayMs + b.AccessDelayMs),
	}
}

// nearestHub returns the hub closest to p.
func (n *Network) nearestHub(p geo.Point) geo.Point {
	best := n.hubs[0]
	bd := geo.DistanceKm(p, best)
	for _, h := range n.hubs[1:] {
		if d := geo.DistanceKm(p, h); d < bd {
			best, bd = h, d
		}
	}
	return best
}

// HashID returns a stable FNV-1a hash of an ID string. It is the single
// ID-hash helper shared by the simulator's per-pair path properties and
// the measurement layer's per-proxy random streams: deriving a stream
// seed as baseSeed ^ HashID(id) makes the stream a pure function of the
// (seed, id) pair, independent of iteration and scheduling order.
func HashID(id HostID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// pairUniforms derives two deterministic uniforms in [0,1) from the seed
// and the unordered host pair.
func (n *Network) pairUniforms(a, b HostID) (float64, float64) {
	if b < a {
		a, b = b, a
	}
	s := HashID(HostID(fmt.Sprintf("%d|%s|%s", n.seed, a, b)))
	r := rand.New(rand.NewSource(int64(s)))
	return r.Float64(), r.Float64()
}

// BaseRTTMs returns the minimum (uncongested) round-trip time between two
// hosts in milliseconds: propagation along the inflated path plus access
// delays, never below the physical floor.
func (n *Network) BaseRTTMs(a, b HostID) (float64, error) {
	n.mu.RLock()
	ha, hb := n.hosts[a], n.hosts[b]
	n.mu.RUnlock()
	if ha == nil || hb == nil {
		return 0, ErrUnknownHost
	}
	if a == b {
		return 0.1, nil
	}
	p := n.profile(ha, hb)
	floor := 2 * geo.DistanceKm(ha.Loc, hb.Loc) / geo.BaselineSpeedKmPerMs
	rtt := 2*p.distKm*p.inflation/geo.BaselineSpeedKmPerMs + p.accessDelay
	// Paths that leave the metro area cross provider edges and exchange
	// points: a distance-independent routing overhead that intra-data-
	// center traffic never pays. This is what separates the sub-5 ms
	// same-LAN RTTs (§8.1's co-location heuristic) from even the
	// shortest inter-city paths.
	if geo.DistanceKm(ha.Loc, hb.Loc) > 50 {
		rtt += wanOverheadMs
	}
	if rtt < floor {
		rtt = floor
	}
	return rtt, nil
}

// SampleRTTMs returns one measured round-trip time: the base RTT plus
// queueing jitter and occasional congestion spikes drawn from rng.
func (n *Network) SampleRTTMs(a, b HostID, rng *rand.Rand) (float64, error) {
	base, err := n.BaseRTTMs(a, b)
	if err != nil {
		return 0, err
	}
	if a == b {
		return base, nil
	}
	n.mu.RLock()
	ha, hb := n.hosts[a], n.hosts[b]
	n.mu.RUnlock()
	p := n.profile(ha, hb)
	extraBase, extraJitter := n.congestionFor(ha, hb)
	rtt := base + extraBase + rng.ExpFloat64()*(p.jitterMean+extraJitter)
	if rng.Float64() < p.spikeProb {
		rtt += rng.ExpFloat64() * p.spikeMean
	}
	return rtt, nil
}

// Ping performs an ICMP echo round trip. It fails if the destination
// blocks ICMP (≈90% of the VPN servers in the paper do).
func (n *Network) Ping(from, to HostID, rng *rand.Rand) (float64, error) {
	n.mu.RLock()
	dst := n.hosts[to]
	n.mu.RUnlock()
	if dst == nil {
		return 0, ErrUnknownHost
	}
	if dst.BlocksICMP {
		return 0, ErrICMPBlocked
	}
	return n.SampleRTTMs(from, to, rng)
}

// synRetransmitMs is the initial TCP SYN retransmission timeout; it
// doubles on every further loss.
const synRetransmitMs = 1000.0

// maxSynRetries bounds handshake retransmissions before the connection
// attempt fails outright.
const maxSynRetries = 3

// ErrTimeout is returned when every handshake packet is lost.
var ErrTimeout = errors.New("netsim: connection timed out")

// TCPConnect measures the time for a TCP three-way handshake's first
// round trip (SYN → SYN-ACK or RST), the primitive both of the paper's
// measurement tools rely on. It fails if the destination filters the
// port. Packet loss triggers SYN retransmissions: the handshake still
// completes, but the measured time includes the retransmission
// timeout — one source of the "high outlier" observations real tools
// must cope with.
func (n *Network) TCPConnect(from, to HostID, port int, rng *rand.Rand) (float64, error) {
	n.mu.RLock()
	src, dst := n.hosts[from], n.hosts[to]
	n.mu.RUnlock()
	if src == nil || dst == nil {
		return 0, ErrUnknownHost
	}
	if dst.FilteredPorts[port] {
		return 0, ErrPortFiltered
	}
	p := n.profile(src, dst)
	var penalty, timeout float64 = 0, synRetransmitMs
	for try := 0; try <= maxSynRetries; try++ {
		if from == to || rng.Float64() >= p.lossProb {
			rtt, err := n.SampleRTTMs(from, to, rng)
			if err != nil {
				return 0, err
			}
			return rtt + penalty, nil
		}
		penalty += timeout
		timeout *= 2
	}
	return 0, ErrTimeout
}

// CanTraceroute reports whether time-exceeded-based route tracing through
// the host is possible.
func (n *Network) CanTraceroute(through HostID) (bool, error) {
	n.mu.RLock()
	h := n.hosts[through]
	n.mu.RUnlock()
	if h == nil {
		return false, ErrUnknownHost
	}
	return !h.DropsTimeExceeded, nil
}

// MinOfSamples takes k RTT samples and returns the minimum, the standard
// way measurement tools suppress queueing noise.
func (n *Network) MinOfSamples(from, to HostID, k int, rng *rand.Rand) (float64, error) {
	if k < 1 {
		k = 1
	}
	best := math.Inf(1)
	for i := 0; i < k; i++ {
		v, err := n.SampleRTTMs(from, to, rng)
		if err != nil {
			return 0, err
		}
		if v < best {
			best = v
		}
	}
	return best, nil
}
