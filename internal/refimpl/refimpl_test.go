package refimpl

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/hybrid"
	"activegeo/internal/octant"
	"activegeo/internal/spotter"
)

var (
	calOnce   sync.Once
	cbgCal    *cbg.Calibration
	ppCal     *cbg.Calibration
	octCal    *octant.Calibration
	spotModel *spotter.Model
)

func fixtures(t testing.TB) (*atlas.Constellation, *geoloc.Env) {
	t.Helper()
	cons, env := algtest.Fixture(t)
	calOnce.Do(func() {
		var err error
		if cbgCal, err = cbg.Calibrate(cons, cbg.Options{}); err != nil {
			panic(err)
		}
		if ppCal, err = cbgpp.Calibrate(cons, cbgpp.Options{}); err != nil {
			panic(err)
		}
		if octCal, err = octant.Calibrate(cons); err != nil {
			panic(err)
		}
		if spotModel, err = spotter.Calibrate(cons); err != nil {
			panic(err)
		}
	})
	return cons, env
}

// diffCells returns the cells present in exactly one of the two regions.
func diffCells(a, b *grid.Region) (onlyA, onlyB []int) {
	a.Each(func(i int) {
		if !b.Contains(i) {
			onlyA = append(onlyA, i)
		}
	})
	b.Each(func(i int) {
		if !a.Contains(i) {
			onlyB = append(onlyB, i)
		}
	})
	return onlyA, onlyB
}

// requireEquivalent asserts the fast-path region matches the reference
// region exactly, or differs only in at most tol boundary-tie cells,
// each within one cell diagonal of the other region. The tolerance
// covers the two documented sources of ulp-level divergence: the
// acos(dot) vs haversine formulation, and the float32 quantization of
// the cached distance fields (≈2 m at antipodal range, against cells
// ≥100 km across).
func requireEquivalent(t *testing.T, g *grid.Grid, label string, ref, fast *grid.Region, tol int) {
	t.Helper()
	onlyRef, onlyFast := diffCells(ref, fast)
	nd := len(onlyRef) + len(onlyFast)
	if nd == 0 {
		return
	}
	if nd > tol {
		t.Errorf("%s: %d cells only in reference, %d only in kernel (ref %d cells, kernel %d cells; tolerance %d)",
			label, len(onlyRef), len(onlyFast), ref.Count(), fast.Count(), tol)
		return
	}
	diag := 1.5 * 111.195 * g.Resolution()
	for _, c := range onlyRef {
		if d := fast.DistanceToPointKm(g.Center(c)); d > diag {
			t.Errorf("%s: reference-only cell %d is %.0f km from the kernel region (max %.0f)", label, c, d, diag)
		}
	}
	for _, c := range onlyFast {
		if d := ref.DistanceToPointKm(g.Center(c)); d > diag {
			t.Errorf("%s: kernel-only cell %d is %.0f km from the reference region (max %.0f)", label, c, d, diag)
		}
	}
	t.Logf("%s: %d boundary-tie cell(s) within tolerance %d", label, nd, tol)
}

// pair is one (reference, kernel) implementation of the same algorithm.
type pair struct {
	name string
	ref  geoloc.Algorithm
	fast geoloc.Algorithm
	// tol returns the allowed boundary-tie cell count given the
	// reference region size.
	tol func(refCount int) int
}

func exact(int) int { return 2 }

func TestKernelEquivalence(t *testing.T) {
	cons, env := fixtures(t)
	pairs := []pair{
		{
			name: "CBG",
			ref:  &CBG{Env: env, Cal: cbgCal},
			fast: cbg.New(env, cbgCal),
			tol:  exact,
		},
		{
			name: "CBG++",
			ref:  &CBGPP{Env: env, Cal: ppCal},
			fast: cbgpp.New(env, ppCal, cbgpp.Options{}),
			tol:  exact,
		},
		{
			name: "Quasi-Octant",
			ref:  &Octant{Env: env, Cal: octCal},
			fast: octant.New(env, octCal),
			tol:  exact,
		},
		{
			name: "Hybrid",
			ref:  &Hybrid{Env: env, Model: spotModel},
			fast: hybrid.New(env, spotModel),
			tol:  exact,
		},
		{
			// Spotter's 95% mass cutoff sits on a sorted cumulative sum,
			// so a near-tie at the cutoff can move a few trailing cells;
			// scale the tolerance with the region.
			name: "Spotter",
			ref:  &Spotter{Env: env, Model: spotModel},
			fast: spotter.New(env, spotModel),
			tol:  func(n int) int { return 3 + n/100 },
		},
	}

	cities := algtest.TestCities()
	names := make([]string, 0, len(cities))
	for n := range cities {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, seed := range []int64{7, 19} {
		for _, city := range names {
			rng := rand.New(rand.NewSource(seed))
			id := fmt.Sprintf("refimpl-eq-%s-%d", city, seed)
			ms := algtest.MeasureTarget(t, cons, id, cities[city], 25, rng)
			if len(ms) < 5 {
				t.Fatalf("too few measurements for %s", id)
			}
			for _, p := range pairs {
				label := fmt.Sprintf("%s/%s/seed%d", p.name, city, seed)
				want, err := p.ref.Locate(ms)
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				got, err := p.fast.Locate(ms)
				if err != nil {
					t.Fatalf("%s: kernel: %v", label, err)
				}
				requireEquivalent(t, env.Grid, label, want, got, p.tol(want.Count()))
			}
		}
	}
}

// TestReferenceNames pins the Name() strings benchaudit keys its
// before/after table on.
func TestReferenceNames(t *testing.T) {
	_, env := fixtures(t)
	for _, a := range []geoloc.Algorithm{
		&CBG{Env: env, Cal: cbgCal},
		&CBGPP{Env: env, Cal: ppCal},
		&Octant{Env: env, Cal: octCal},
		&Hybrid{Env: env, Model: spotModel},
		&Spotter{Env: env, Model: spotModel},
	} {
		if a.Name() == "" {
			t.Fatalf("%T: empty name", a)
		}
	}
}
