// Package refimpl preserves the pre-kernel implementations of the five
// localization algorithms: per-cell haversine trigonometry with no
// distance-field cache, exactly as the algorithms computed before the
// geometry kernel (internal/geo.Vec3 + grid.DistanceField) landed.
//
// It exists for two reasons:
//
//  1. Equivalence testing. The kernel's dot-product membership test is
//     monotone-equivalent to the haversine test, so every algorithm must
//     produce the same region through either path (up to documented
//     ulp-level boundary ties; see the package tests). Each reference
//     Locate is composed from the grid's *Reference primitives
//     (AddCapReference, etc.) and the algorithms' exported calibration
//     APIs, so it shares no fast-path geometry code with the kernel.
//  2. Honest "before" benchmarks. cmd/benchaudit -mode locate times
//     these against the kernel implementations to produce the
//     before/after table in BENCH_locate.json.
//
// One deliberate divergence: the pre-kernel Spotter sorted scored cells
// with an unstable comparator on the score alone, so equal-score cells
// ordered nondeterministically. The reference here adopts the same
// deterministic tie-break (ascending cell index) as the fixed Spotter,
// so equivalence comparisons isolate geometry differences from the
// sort-stability bugfix.
package refimpl

import (
	"math"
	"sort"

	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/hybrid"
	"activegeo/internal/octant"
	"activegeo/internal/spotter"
)

// capRegionReference rasterizes a spherical cap with the pre-kernel
// per-cell haversine test.
func capRegionReference(g *grid.Grid, c geo.Cap) *grid.Region {
	r := g.NewRegion()
	r.AddCapReference(c)
	return r
}

// ringRegionReference is the pre-kernel geoloc.RingRegion: outer cap
// minus the inner cap shrunk by one cell diagonal, both via haversine.
func ringRegionReference(g *grid.Grid, ring geo.Ring) *grid.Region {
	outer := capRegionReference(g, geo.Cap{Center: ring.Center, RadiusKm: ring.MaxKm})
	if ring.MinKm > 0 {
		shrink := ring.MinKm - 1.5*111.195*g.Resolution()
		if shrink > 0 {
			inner := capRegionReference(g, geo.Cap{Center: ring.Center, RadiusKm: shrink})
			outer.SubtractWith(inner)
		}
	}
	return outer
}

// CBG is the pre-kernel CBG: pad disks, intersect starting from the
// smallest, haversine per cell.
type CBG struct {
	Env *geoloc.Env
	Cal *cbg.Calibration
}

// Name implements geoloc.Algorithm.
func (c *CBG) Name() string { return "CBG (reference)" }

// Locate implements geoloc.Algorithm with the pre-kernel disk
// intersection.
func (c *CBG) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	pad := c.Env.PadKm()
	disks := make([]geo.Cap, len(ms))
	min := 0
	for i, m := range ms {
		disks[i] = geo.Cap{
			Center:   m.Landmark,
			RadiusKm: c.Cal.MaxDistanceKm(m.LandmarkID, m.OneWayMs()) + pad,
		}
		if disks[i].RadiusKm < disks[min].RadiusKm {
			min = i
		}
	}
	region := capRegionReference(c.Env.Grid, disks[min])
	for i, d := range disks {
		if i == min {
			continue
		}
		region.IntersectCapReference(d)
		if region.Empty() {
			return region, nil
		}
	}
	return c.Env.ApplyExclusions(region), nil
}

// CBGPP is the pre-kernel CBG++: baseline-region filtering over
// haversine-rasterized disks.
type CBGPP struct {
	Env  *geoloc.Env
	Cal  *cbg.Calibration
	Opts cbgpp.Options
}

// Name implements geoloc.Algorithm.
func (c *CBGPP) Name() string { return "CBG++ (reference)" }

// baselineRegion is the pre-kernel CBGPP.BaselineRegion.
func (c *CBGPP) baselineRegion(ms []geoloc.Measurement) *grid.Region {
	pad := c.Env.PadKm()
	regions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		r := geo.MaxDistanceKm(m.OneWayMs(), geo.BaselineSpeedKmPerMs) + pad
		regions = append(regions, capRegionReference(c.Env.Grid, geo.Cap{Center: m.Landmark, RadiusKm: r}))
	}
	best, _ := geoloc.CoverageArgmax(c.Env.Grid, regions)
	return best
}

// Locate implements geoloc.Algorithm with the pre-kernel CBG++ pipeline.
func (c *CBGPP) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	pad := c.Env.PadKm()

	bestlineRegions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		r := c.Cal.MaxDistanceKm(m.LandmarkID, m.OneWayMs()) + pad
		bestlineRegions = append(bestlineRegions, capRegionReference(c.Env.Grid, geo.Cap{Center: m.Landmark, RadiusKm: r}))
	}

	kept := bestlineRegions
	if !c.Opts.DisableBaselineFilter {
		baseRegion := c.baselineRegion(ms)
		kept = kept[:0:0]
		for _, br := range bestlineRegions {
			if br.IntersectsRegion(baseRegion) {
				kept = append(kept, br)
			}
		}
		if len(kept) == 0 {
			return c.Env.ApplyExclusions(baseRegion), nil
		}
	}

	best, _ := geoloc.CoverageArgmax(c.Env.Grid, kept)
	return c.Env.ApplyExclusions(best), nil
}

// Octant is the pre-kernel Quasi-Octant: padded rings rasterized with
// haversine caps, then IntersectOrArgmax.
type Octant struct {
	Env *geoloc.Env
	Cal *octant.Calibration
}

// Name implements geoloc.Algorithm.
func (o *Octant) Name() string { return "Quasi-Octant (reference)" }

// Locate implements geoloc.Algorithm with the pre-kernel ring
// multilateration.
func (o *Octant) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	pad := o.Env.PadKm()
	regions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		cv := o.Cal.Curves(m.LandmarkID)
		t := m.OneWayMs()
		r := geo.Ring{
			Center: m.Landmark,
			MinKm:  cv.MinDistanceKm(t) - pad,
			MaxKm:  cv.MaxDistanceKm(t) + pad,
		}
		if r.MinKm < 0 {
			r.MinKm = 0
		}
		regions = append(regions, ringRegionReference(o.Env.Grid, r))
	}
	best := geoloc.IntersectOrArgmax(o.Env.Grid, regions)
	return o.Env.ApplyExclusions(best), nil
}

// Hybrid is the pre-kernel Spotter/Octant hybrid: µ±5σ rings rasterized
// with haversine caps.
type Hybrid struct {
	Env   *geoloc.Env
	Model *spotter.Model
}

// Name implements geoloc.Algorithm.
func (h *Hybrid) Name() string { return "Hybrid (reference)" }

// Locate implements geoloc.Algorithm with the pre-kernel hybrid rings.
func (h *Hybrid) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	pad := h.Env.PadKm()
	regions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		t := m.OneWayMs()
		mu, sig := h.Model.MuKm(t), h.Model.SigmaKm(t)
		r := geo.Ring{Center: m.Landmark, MinKm: mu - hybrid.SigmaSpan*sig, MaxKm: mu + hybrid.SigmaSpan*sig}
		if r.MinKm < 0 {
			r.MinKm = 0
		}
		if r.MaxKm > geo.HalfEquatorKm {
			r.MaxKm = geo.HalfEquatorKm
		}
		r.MaxKm += pad
		r.MinKm -= pad
		if r.MinKm < 0 {
			r.MinKm = 0
		}
		regions = append(regions, ringRegionReference(h.Env.Grid, r))
	}
	best := geoloc.IntersectOrArgmax(h.Env.Grid, regions)
	return h.Env.ApplyExclusions(best), nil
}

// Spotter is the pre-kernel Spotter: a full land scan evaluating the
// delay model and a haversine distance per (cell, measurement) pair,
// with no pruning and no cached distance fields.
type Spotter struct {
	Env   *geoloc.Env
	Model *spotter.Model
}

// Name implements geoloc.Algorithm.
func (s *Spotter) Name() string { return "Spotter (reference)" }

// Locate implements geoloc.Algorithm with the pre-kernel posterior scan.
func (s *Spotter) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	g := s.Env.Grid
	land := s.Env.Mask.LandRef()

	type scored struct {
		cell int
		logp float64
	}
	cells := make([]scored, 0, land.Count())
	land.Each(func(i int) {
		p := g.Center(i)
		lp := 0.0
		for _, m := range ms {
			d := geo.DistanceKm(m.Landmark, p)
			t := m.OneWayMs()
			mu, sig := s.Model.MuKm(t), s.Model.SigmaKm(t)
			z := (d - mu) / sig
			lp += -0.5*z*z - math.Log(sig)
		}
		cells = append(cells, scored{cell: i, logp: lp})
	})
	if len(cells) == 0 {
		return g.NewRegion(), nil
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].logp != cells[j].logp {
			return cells[i].logp > cells[j].logp
		}
		return cells[i].cell < cells[j].cell
	})

	best := cells[0].logp
	var total float64
	masses := make([]float64, len(cells))
	for i, c := range cells {
		masses[i] = math.Exp(c.logp-best) * g.CellArea(c.cell)
		total += masses[i]
	}
	region := g.NewRegion()
	var acc float64
	for i, c := range cells {
		region.Add(c.cell)
		acc += masses[i]
		if acc >= spotter.MassFraction*total {
			break
		}
	}
	return region, nil
}

var (
	_ geoloc.Algorithm = (*CBG)(nil)
	_ geoloc.Algorithm = (*CBGPP)(nil)
	_ geoloc.Algorithm = (*Octant)(nil)
	_ geoloc.Algorithm = (*Hybrid)(nil)
	_ geoloc.Algorithm = (*Spotter)(nil)
)
