package activegeo

import (
	"context"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"
)

func TestFacadeGeodesy(t *testing.T) {
	paris := Point{Lat: 48.86, Lon: 2.35}
	london := Point{Lat: 51.51, Lon: -0.13}
	if d := DistanceKm(paris, london); math.Abs(d-344) > 10 {
		t.Errorf("Paris-London = %f", d)
	}
	if BaselineSpeedKmPerMs != 200 || math.Abs(SlowlineSpeedKmPerMs-84.5) > 0.01 {
		t.Error("constants")
	}
	c := Cap{Center: paris, RadiusKm: 400}
	if !c.Contains(london) {
		t.Error("cap")
	}
	r := Ring{Center: paris, MinKm: 100, MaxKm: 400}
	if !r.Contains(london) {
		t.Error("ring")
	}
}

func TestFacadeGridAndCountries(t *testing.T) {
	g := NewGrid(2.0)
	if g.NumCells() < 5000 {
		t.Errorf("cells = %d", g.NumCells())
	}
	if c := CountryByCode("de"); c == nil || c.Name != "Germany" {
		t.Error("CountryByCode")
	}
	if c := LocateCountry(Point{Lat: 52.52, Lon: 13.405}); c == nil || c.Code != "de" {
		t.Error("LocateCountry")
	}
}

func TestFacadeEtaHelpers(t *testing.T) {
	var direct, indirect []float64
	for i := 1; i <= 60; i++ {
		d := float64(i) * 3
		direct = append(direct, d)
		indirect = append(indirect, d/0.49)
	}
	eta, r2, err := EstimateEta(direct, indirect)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eta-0.49) > 0.01 || r2 < 0.999 {
		t.Errorf("eta=%f r2=%f", eta, r2)
	}
	s := []Sample{{LandmarkID: "x", RTTms: 100}}
	out := CorrectForProxy(s, 100, DefaultEta)
	if len(out) != 1 || math.Abs(out[0].RTTms-51) > 1e-9 {
		t.Errorf("corrected %v", out)
	}
	if len(Measurements(out)) != 1 {
		t.Error("Measurements")
	}
}

func TestFacadeVerdicts(t *testing.T) {
	if ClaimCredible.String() != "credible" || ClaimFalse.String() != "false" || ClaimUncertain.String() != "uncertain" {
		t.Error("verdict aliases")
	}
}

func TestFacadeRealNetwork(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := ConnectRTT(ctx, ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if _, err := MinConnectRTT(ctx, ln.Addr().String(), 3); err != nil {
		t.Fatal(err)
	}

	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fwd := &Forwarder{}
	go func() { _ = fwd.Serve(pln) }()
	defer fwd.Close()
	if _, err := ConnectRTTThrough(ctx, pln.Addr().String(), ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	conn, err := DialThrough(ctx, pln.Addr().String(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
}

func TestFacadeLabEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("lab build is slow")
	}
	lab, err := NewLab(LabConfig{
		Seed: 5, Anchors: 30, Probes: 20, GridResDeg: 2.5,
		FleetTotal: 40, Volunteers: 3, MTurkers: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := HostID("facade-target")
	loc := Point{Lat: 40.42, Lon: -3.70} // Madrid
	if err := lab.Net.AddHost(&Host{ID: target, Loc: loc}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	tp := &TwoPhase{Cons: lab.Cons, Tool: &CLITool{Net: lab.Net}}
	res, err := tp.Run(target, rng)
	if err != nil {
		t.Fatal(err)
	}
	region, err := lab.CBGpp.Locate(Measurements(res.Samples()))
	if err != nil {
		t.Fatal(err)
	}
	if region.Empty() {
		t.Fatal("empty region")
	}
	c, _ := region.Centroid()
	if d := DistanceKm(c, loc); d > 4000 {
		t.Errorf("centroid %.0f km off at tiny scale", d)
	}
	run, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) < 30 {
		t.Errorf("audited %d servers", len(run.Results))
	}
	if PaperConfig().FleetTotal != 2269 {
		t.Error("PaperConfig scale")
	}
	if QuickConfig().Anchors == 0 {
		t.Error("QuickConfig")
	}
}
