package activegeo_test

import (
	"fmt"

	"activegeo"
)

// The geodesy primitives are plain value types.
func ExampleDistanceKm() {
	paris := activegeo.Point{Lat: 48.8566, Lon: 2.3522}
	london := activegeo.Point{Lat: 51.5074, Lon: -0.1278}
	fmt.Printf("%.0f km\n", activegeo.DistanceKm(paris, london))
	// Output: 344 km
}

// A Cap is the multilateration primitive: "within r km of here".
func ExampleCap() {
	bourges := activegeo.Point{Lat: 47.08, Lon: 2.40}
	disk := activegeo.Cap{Center: bourges, RadiusKm: 500}
	brussels := activegeo.Point{Lat: 50.85, Lon: 4.35}
	fmt.Println(disk.Contains(brussels))
	// Output: true
}

// Countries come from the built-in world atlas, with the paper's
// Appendix A continent scheme.
func ExampleCountryByCode() {
	de := activegeo.CountryByCode("de")
	fmt.Println(de.Name, "—", de.Continent)
	sa := activegeo.CountryByCode("sa")
	fmt.Println(sa.Name, "—", sa.Continent)
	// Output:
	// Germany — Europe
	// Saudi Arabia — Africa
}

// LocateCountry is the point-in-country primitive the assessment
// pipeline builds on.
func ExampleLocateCountry() {
	c := activegeo.LocateCountry(activegeo.Point{Lat: 52.52, Lon: 13.405})
	fmt.Println(c.Code)
	// Output: de
}

// η converts indirect (through-proxy) measurements into proxy-to-
// landmark times: A = B − ηC.
func ExampleCorrectForProxy() {
	samples := []activegeo.Sample{{LandmarkID: "fra", RTTms: 120}}
	selfPing := 40.0 // the client pinging itself through the proxy
	corrected := activegeo.CorrectForProxy(samples, selfPing, activegeo.DefaultEta)
	fmt.Printf("%.1f ms\n", corrected[0].RTTms)
	// Output: 100.4 ms
}

// Grids discretize the Earth; regions are cell sets over them.
func ExampleNewGrid() {
	g := activegeo.NewGrid(1.0)
	region := g.CapRegion(activegeo.Cap{
		Center:   activegeo.Point{Lat: 50.85, Lon: 4.35},
		RadiusKm: 300,
	})
	fmt.Println(region.ContainsPoint(activegeo.Point{Lat: 52.37, Lon: 4.89})) // Amsterdam
	fmt.Println(region.ContainsPoint(activegeo.Point{Lat: 40.71, Lon: -74.0}))
	// Output:
	// true
	// false
}
