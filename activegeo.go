// Package activegeo is a library for active geolocation — estimating
// where an Internet host physically is from packet round-trip times to
// landmarks in known locations — and for auditing the advertised
// locations of commercial network proxies, reproducing "How to Catch
// when Proxies Lie: Verifying the Physical Locations of Network Proxies
// with Active Geolocation" (Weinberg, Cho, Christin, Sekar, Gill;
// IMC 2018).
//
// The package is a facade over the implementation packages. It exposes,
// through type aliases, everything a user needs:
//
//   - geodesy primitives (Point, Cap, Ring) and an equal-area Region
//     discretization of the Earth;
//   - five geolocation algorithms — CBG, Quasi-Octant, Spotter, a
//     Quasi-Octant/Spotter Hybrid, and the paper's CBG++ — behind one
//     Algorithm interface;
//   - the measurement toolkit: simulated CLI and web tools, the
//     two-phase procedure, proxy indirection with η correction, and real
//     TCP-connect round-trip measurement over package net;
//   - the claim-assessment pipeline (credible / uncertain / false, with
//     data-center and AS//24 disambiguation);
//   - a deterministic world-scale network simulator, landmark
//     constellation, VPN provider fleet, and crowdsourced-host cohort —
//     the substrate on which every experiment of the paper's evaluation
//     can be regenerated (see the Lab type and the cmd/experiments
//     binary).
//
// # Quick start
//
//	lab, err := activegeo.NewLab(activegeo.QuickConfig())
//	if err != nil { ... }
//	run, err := lab.Audit()           // the paper's §6 pipeline
//	fig17, err := lab.Fig17Assessment()
//	fmt.Println(fig17.Render())
//
// See examples/ for runnable programs.
package activegeo

import (
	"activegeo/internal/assess"
	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/crowd"
	"activegeo/internal/experiments"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/hybrid"
	"activegeo/internal/iclab"
	"activegeo/internal/ipdb"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/octant"
	"activegeo/internal/proxy"
	"activegeo/internal/spotter"
	"activegeo/internal/worldmap"
)

// Geodesy.
type (
	// Point is a latitude/longitude position on the Earth's surface.
	Point = geo.Point
	// Cap is a spherical disk: the multilateration primitive.
	Cap = geo.Cap
	// Ring is a spherical annulus, used by Octant-style algorithms.
	Ring = geo.Ring
)

// Physical constants from the paper.
const (
	// BaselineSpeedKmPerMs is the 200 km/ms fiber propagation bound.
	BaselineSpeedKmPerMs = geo.BaselineSpeedKmPerMs
	// SlowlineSpeedKmPerMs is CBG++'s 84.5 km/ms lower speed bound.
	SlowlineSpeedKmPerMs = geo.SlowlineSpeedKmPerMs
)

// DistanceKm returns the great-circle distance between two points.
func DistanceKm(a, b Point) float64 { return geo.DistanceKm(a, b) }

// Discretization.
type (
	// Grid is an equal-area discretization of the Earth's surface.
	Grid = grid.Grid
	// Region is a set of grid cells: every algorithm's prediction type.
	Region = grid.Region
)

// NewGrid builds a grid with the given latitude-band height in degrees.
func NewGrid(resDeg float64) *Grid { return grid.New(resDeg) }

// Algorithms and measurements.
type (
	// Measurement is one RTT observation from a known landmark.
	Measurement = geoloc.Measurement
	// Algorithm locates a target from measurements.
	Algorithm = geoloc.Algorithm
	// Env is the shared grid + world-map environment algorithms run in.
	Env = geoloc.Env
	// CBG is Constraint-Based Geolocation (§3.1).
	CBG = cbg.CBG
	// QuasiOctant is the traceroute-free Octant (§3.2).
	QuasiOctant = octant.Octant
	// Spotter is the probabilistic algorithm (§3.3).
	Spotter = spotter.Spotter
	// Hybrid combines Spotter's delay model with ring multilateration (§3.4).
	Hybrid = hybrid.Hybrid
	// CBGPP is the paper's CBG++ (§5.1).
	CBGPP = cbgpp.CBGPP
	// ICLabChecker is the speed-limit country checker compared in §6.2.
	ICLabChecker = iclab.Checker
)

// NewEnv builds an algorithm environment at the given grid resolution.
func NewEnv(resDeg float64) *Env { return geoloc.NewEnv(resDeg) }

// World model.
type (
	// Country is a country or territory of the world atlas.
	Country = worldmap.Country
	// Continent is the paper's eight-way continent scheme.
	Continent = worldmap.Continent
)

// CountryByCode returns a country by ISO code, or nil.
func CountryByCode(code string) *Country { return worldmap.ByCode(code) }

// LocateCountry returns the country containing a point, or nil at sea.
func LocateCountry(p Point) *Country { return worldmap.Locate(p) }

// Simulation substrate.
type (
	// Network is the deterministic world-scale delay simulator.
	Network = netsim.Network
	// Host is a simulated Internet host.
	Host = netsim.Host
	// HostID identifies a host within a Network.
	HostID = netsim.HostID
	// Constellation is the landmark set (the RIPE Atlas substitute).
	Constellation = atlas.Constellation
	// Landmark is one anchor or stable probe.
	Landmark = atlas.Landmark
	// Fleet is the simulated seven-provider VPN ecosystem.
	Fleet = proxy.Fleet
	// ProxyServer is one VPN server with its claimed and true countries.
	ProxyServer = proxy.Server
	// CrowdHost is one crowdsourced validation host.
	CrowdHost = crowd.Host
)

// Measurement tooling.
type (
	// CLITool is the simulated command-line measurement tool (§4.2).
	CLITool = measure.CLITool
	// WebTool is the simulated browser measurement tool (§4.2–4.3).
	WebTool = measure.WebTool
	// TwoPhase is the §4.1 two-phase measurement procedure.
	TwoPhase = measure.TwoPhase
	// ProxiedTool measures landmarks through a proxy (§5.3).
	ProxiedTool = measure.ProxiedTool
	// Sample is one raw tool observation.
	Sample = measure.Sample
	// Forwarder is a real TCP forwarding proxy for live demonstrations.
	Forwarder = proxy.Forwarder
)

// Measurements converts raw samples to algorithm inputs.
func Measurements(samples []Sample) []Measurement { return measure.Measurements(samples) }

// CorrectForProxy removes the client↔proxy leg: A = B − ηC (§5.3).
func CorrectForProxy(samples []Sample, selfPingMs, eta float64) []Sample {
	return measure.CorrectForProxy(samples, selfPingMs, eta)
}

// EstimateEta fits the robust direct-vs-indirect regression of Figure 13.
func EstimateEta(directMs, indirectMs []float64) (eta, r2 float64, err error) {
	return measure.EstimateEta(directMs, indirectMs)
}

// DefaultEta is the paper's measured η of 0.49.
const DefaultEta = measure.DefaultEta

// Real-network measurement (package net based).
//
// ConnectRTT times one real TCP handshake round trip the way the
// paper's CLI tool does; DialThrough and ConnectRTTThrough use the
// Forwarder's protocol to measure through a live proxy.
var (
	ConnectRTT        = measure.ConnectRTT
	MinConnectRTT     = measure.MinConnectRTT
	DialThrough       = proxy.DialThrough
	ConnectRTTThrough = proxy.ConnectRTTThrough
)

// Measurement persistence (the JSON format cmd/geolocate consumes).
var (
	WriteMeasurements = measure.WriteMeasurements
	ReadMeasurements  = measure.ReadMeasurements
)

// Assessment.
type (
	// Verdict classifies a location claim.
	Verdict = assess.Verdict
	// AssessResult is one server's full assessment.
	AssessResult = assess.Result
	// Tally aggregates verdicts (Figure 17).
	Tally = assess.Tally
	// IPDatabase is one of the five synthetic IP-to-location databases.
	IPDatabase = ipdb.Database
)

// Verdicts.
const (
	// ClaimCredible: the prediction region lies entirely in the claimed country.
	ClaimCredible = assess.Credible
	// ClaimUncertain: the region covers the claimed country and others.
	ClaimUncertain = assess.Uncertain
	// ClaimFalse: the region does not touch the claimed country at all.
	ClaimFalse = assess.False
)

// Experiments.
type (
	// Lab bundles the full experimental setup of the paper.
	Lab = experiments.Lab
	// LabConfig sizes a Lab.
	LabConfig = experiments.Config
	// AuditRun is the memoized output of the §6 pipeline.
	AuditRun = experiments.AuditRun
)

// NewLab builds and calibrates a complete experimental setup.
func NewLab(cfg LabConfig) (*Lab, error) { return experiments.NewLab(cfg) }

// PaperConfig reproduces the paper's scale (2269 servers, 250 anchors).
func PaperConfig() LabConfig { return experiments.PaperConfig() }

// QuickConfig is a reduced-scale configuration for quick runs.
func QuickConfig() LabConfig { return experiments.QuickConfig() }
