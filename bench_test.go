package activegeo

// Benchmarks: one per table/figure of the paper's evaluation, plus
// ablations of the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// The figure benches exercise the exact generator the cmd/experiments
// binary uses, at a reduced scale; custom metrics report the headline
// quantity each figure is about, so the "shape" (who wins, by how much)
// is visible straight from the bench output.

import (
	"math/rand"
	"sync"
	"testing"

	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/experiments"
	"activegeo/internal/geoloc"
	"activegeo/internal/measure"
	"activegeo/internal/refimpl"
)

var (
	benchOnce sync.Once
	benchLab  *Lab
	benchErr  error
)

func benchConfig() LabConfig {
	return LabConfig{
		Seed:       2018,
		Anchors:    60,
		Probes:     60,
		GridResDeg: 2.0,
		FleetTotal: 160,
		Volunteers: 8,
		MTurkers:   24,
	}
}

func getLab(b *testing.B) *Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab, benchErr = NewLab(benchConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

func BenchmarkFig2Calibration(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig2Calibration()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BestlineSpeed, "bestline-km/ms")
	}
}

func BenchmarkFig4ToolValidation(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig4ToolValidation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SlopeRatio, "slope-ratio")
	}
}

func BenchmarkFig5WindowsBrowsers(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Fig5Windows()
		if err != nil {
			b.Fatal(err)
		}
		outliers := 0
		for _, r := range rows {
			outliers += r.HighOutliers
		}
		b.ReportMetric(float64(outliers), "high-outliers")
	}
}

func BenchmarkFig9AlgorithmComparison(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Fig9AlgorithmComparison()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "CBG" {
				b.ReportMetric(r.Coverage, "cbg-coverage")
			}
		}
	}
}

func BenchmarkFig10EstimateRatios(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig10EstimateRatios()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.BestlineUnderFrac, "bestline-under-%")
	}
}

func BenchmarkFig11LandmarkEffectiveness(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig11LandmarkEffectiveness(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DistanceReductionCorr, "dist-reduction-corr")
	}
}

func BenchmarkCBGppCoverage(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.CBGppCoverage()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.CBGppMisses), "cbgpp-misses")
		b.ReportMetric(float64(r.CBGMisses), "cbg-misses")
	}
}

func BenchmarkFig13Eta(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig13Eta()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Eta, "eta")
	}
}

func BenchmarkFig14ProviderClaims(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := lab.Fig14Market()
		b.ReportMetric(float64(len(r.Entries)), "providers")
	}
}

func BenchmarkFig16Disambiguation(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig16Disambiguation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ByDataCenters+r.ByGroups), "resolved")
	}
}

func BenchmarkFig17Assessment(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab.ResetAudit() // time the full pipeline, not the memo
		r, err := lab.Fig17Assessment()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(r.Tally.False)/float64(r.Tally.Total()), "false-%")
	}
}

// BenchmarkAuditPipeline times the full §6 audit serially and with the
// default worker pool. The verdicts are identical in both cases (and at
// any other width): only wall-clock time varies with the worker count.
func BenchmarkAuditPipeline(b *testing.B) {
	lab := getLab(b)
	origin := lab.Cfg.Concurrency
	defer func() { lab.Cfg.Concurrency = origin }()
	for _, variant := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(variant.name, func(b *testing.B) {
			lab.Cfg.Concurrency = variant.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lab.ResetAudit()
				run, err := lab.Audit()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(run.Results)), "servers")
			}
		})
	}
}

func BenchmarkFig18HonestyByCountry(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig18HonestyByCountry()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Cells)), "cells")
	}
}

func BenchmarkFig19ProviderMaps(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig18HonestyByCountry()
		if err != nil {
			b.Fatal(err)
		}
		if r.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig20RegionSizeVsLandmark(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig20RegionSizeVsLandmark()
		if err != nil {
			b.Skip(err)
		}
		b.ReportMetric(r.Corr, "corr")
	}
}

func BenchmarkFig21Comparison(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Fig21Comparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "providers")
	}
}

func BenchmarkFig22ContinentConfusion(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig22_23Confusion()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Continents)), "cells")
	}
}

func BenchmarkFig23CountryConfusion(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig22_23Confusion()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Countries)), "cells")
	}
}

// --- Ablations -----------------------------------------------------------

// benchCrowdMeasurements captures one crowd host's measurement vector.
func benchCrowdMeasurements(b *testing.B, lab *Lab) []Measurement {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	h := lab.Crowd[0]
	samples := h.MeasureAllAnchors(lab.Cons, rng)
	return Measurements(samples)
}

// BenchmarkAblationSlowline compares CBG++ with and without the slowline
// clamp (speed floor of 84.5 km/ms).
func BenchmarkAblationSlowline(b *testing.B) {
	lab := getLab(b)
	ms := benchCrowdMeasurements(b, lab)
	for _, variant := range []struct {
		name string
		opts cbgpp.Options
	}{
		{"with-slowline", cbgpp.Options{}},
		{"no-slowline", cbgpp.Options{DisableSlowline: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cal, err := cbgpp.Calibrate(lab.Cons, variant.opts)
			if err != nil {
				b.Fatal(err)
			}
			alg := cbgpp.New(lab.Env, cal, variant.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				region, err := alg.Locate(ms)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(region.AreaKm2()/1e6, "area-Mm2")
			}
		})
	}
}

// BenchmarkAblationBaselineFilter compares CBG++ with and without
// baseline-region disk filtering.
func BenchmarkAblationBaselineFilter(b *testing.B) {
	lab := getLab(b)
	ms := benchCrowdMeasurements(b, lab)
	for _, variant := range []struct {
		name string
		opts cbgpp.Options
	}{
		{"with-filter", cbgpp.Options{}},
		{"no-filter", cbgpp.Options{DisableBaselineFilter: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cal, err := cbgpp.Calibrate(lab.Cons, variant.opts)
			if err != nil {
				b.Fatal(err)
			}
			alg := cbgpp.New(lab.Env, cal, variant.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Locate(ms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTwoPhase compares the two-phase measurement (3
// anchors/continent + 25 same-continent landmarks) against measuring
// every anchor.
func BenchmarkAblationTwoPhase(b *testing.B) {
	lab := getLab(b)
	h := lab.Crowd[1]
	b.Run("two-phase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i)))
			res, err := h.MeasureTwoPhase(lab.Cons, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Samples())), "measurements")
		}
	})
	b.Run("all-anchors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i)))
			samples := h.MeasureAllAnchors(lab.Cons, rng)
			b.ReportMetric(float64(len(samples)), "measurements")
		}
	})
}

// BenchmarkAblationGridResolution shows the precision/cost tradeoff of
// the region grid.
func BenchmarkAblationGridResolution(b *testing.B) {
	lab := getLab(b)
	ms := benchCrowdMeasurements(b, lab)
	for _, res := range []float64{3.0, 2.0, 1.0} {
		b.Run(resName(res), func(b *testing.B) {
			env := geoloc.NewEnv(res)
			cal, err := cbgpp.Calibrate(lab.Cons, cbgpp.Options{})
			if err != nil {
				b.Fatal(err)
			}
			alg := cbgpp.New(env, cal, cbgpp.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				region, err := alg.Locate(ms)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(region.AreaKm2()/1e6, "area-Mm2")
			}
		})
	}
}

func resName(res float64) string {
	switch res {
	case 3.0:
		return "3.0deg"
	case 2.0:
		return "2.0deg"
	default:
		return "1.0deg"
	}
}

// BenchmarkAblationEtaSubtraction compares locating a proxy with and
// without the §5.3 client-leg subtraction.
func BenchmarkAblationEtaSubtraction(b *testing.B) {
	lab := getLab(b)
	s := lab.Fleet.Servers()[0]
	rng := rand.New(rand.NewSource(88))
	pt := &ProxiedTool{Net: lab.Net, Client: lab.Client, Proxy: s.Host.ID}
	self, err := pt.SelfPing(rng)
	if err != nil {
		b.Fatal(err)
	}
	var raw []Sample
	for _, lm := range lab.Cons.Anchors()[:30] {
		smp, err := pt.Measure("", lm, rng)
		if err != nil {
			continue
		}
		raw = append(raw, smp)
	}
	truth := s.Host.Loc
	for _, variant := range []struct {
		name string
		eta  float64
	}{
		{"with-eta", DefaultEta},
		{"naive", 0.000001}, // effectively no subtraction
	} {
		b.Run(variant.name, func(b *testing.B) {
			corrected := measure.CorrectForProxy(raw, self, variant.eta)
			ms := Measurements(corrected)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				region, err := lab.CBGpp.Locate(ms)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(region.DistanceToPointKm(truth), "miss-km")
				b.ReportMetric(region.AreaKm2()/1e6, "area-Mm2")
			}
		})
	}
}

// BenchmarkExtRefinement times the §8.1 iterative refinement loop.
func BenchmarkExtRefinement(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.ExtRefinement(3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanAreaAfter/1e6, "area-after-Mm2")
	}
}

// BenchmarkExtCoLocation times the proxy-mesh co-location pilot.
func BenchmarkExtCoLocation(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.ExtCoLocation("A", 30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Groups), "groups")
	}
}

// BenchmarkExtAdversary times the §8 decoy attack analysis.
func BenchmarkExtAdversary(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.ExtAdversary()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ForgedCBGppToDecoyKm, "decoy-miss-km")
	}
}

// BenchmarkExtConstellations times the §8.1 cross-constellation
// overestimation study.
func BenchmarkExtConstellations(b *testing.B) {
	lab := getLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.ExtConstellations()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WithinMedianRatio, "within-ratio")
	}
}

// BenchmarkLocateCBG times a single plain-CBG localization.
func BenchmarkLocateCBG(b *testing.B) {
	lab := getLab(b)
	ms := benchCrowdMeasurements(b, lab)
	cal, err := cbg.Calibrate(lab.Cons, cbg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	alg := cbg.New(lab.Env, cal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Locate(ms); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLocate times one algorithm's Locate on a fixed measurement
// vector, with a warmup call outside the timer so the kernel side is
// measured in its steady state (landmark distance fields cached) — the
// state every audit target after the first runs in.
func benchLocate(b *testing.B, alg geoloc.Algorithm, ms []Measurement) {
	b.Helper()
	region, err := alg.Locate(ms)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(region.Count()), "region-cells")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Locate(ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpotterLocate times the kernel-backed Spotter (cached
// distance fields, hoisted model evaluation, plausibility prune).
// Compare against BenchmarkSpotterLocateReference for the pre-kernel
// baseline; cmd/benchaudit -mode locate records the same pair (plus the
// other four algorithms) in BENCH_locate.json.
func BenchmarkSpotterLocate(b *testing.B) {
	lab := getLab(b)
	benchLocate(b, lab.Spotter, benchCrowdMeasurements(b, lab))
}

// BenchmarkSpotterLocateReference times the pre-kernel Spotter: a full
// land scan with per-cell haversine and per-cell model evaluation.
func BenchmarkSpotterLocateReference(b *testing.B) {
	lab := getLab(b)
	ref := &refimpl.Spotter{Env: lab.Env, Model: lab.Spotter.Model()}
	benchLocate(b, ref, benchCrowdMeasurements(b, lab))
}

// BenchmarkLocateKernel times every kernel-backed algorithm on the same
// measurement vector; the Reference variants below are the pre-kernel
// baselines.
func BenchmarkLocateKernel(b *testing.B) {
	lab := getLab(b)
	ms := benchCrowdMeasurements(b, lab)
	for _, alg := range []geoloc.Algorithm{lab.CBG, lab.CBGpp, lab.Octant, lab.Hybrid} {
		b.Run(alg.Name(), func(b *testing.B) { benchLocate(b, alg, ms) })
	}
}

// BenchmarkLocateReference times the pre-kernel implementations of the
// same algorithms (per-cell haversine, no distance-field cache).
func BenchmarkLocateReference(b *testing.B) {
	lab := getLab(b)
	ms := benchCrowdMeasurements(b, lab)
	for _, alg := range []geoloc.Algorithm{
		&refimpl.CBG{Env: lab.Env, Cal: lab.CBG.Calibration()},
		&refimpl.CBGPP{Env: lab.Env, Cal: lab.CBGpp.Calibration()},
		&refimpl.Octant{Env: lab.Env, Cal: lab.Octant.Calibration()},
		&refimpl.Hybrid{Env: lab.Env, Model: lab.Spotter.Model()},
	} {
		b.Run(alg.Name(), func(b *testing.B) { benchLocate(b, alg, ms) })
	}
}

var _ = experiments.PaperConfig // keep the experiments import for documentation cross-reference
