// Proxyaudit: the paper's §6 flow for one provider — measure every
// server through the proxy (self-ping, η correction, two-phase), locate
// it with CBG++, and judge the provider's country claims.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"activegeo"
	"activegeo/internal/assess"
	"activegeo/internal/measure"
)

func main() {
	lab, err := activegeo.NewLab(activegeo.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	provider := lab.Fleet.Provider("A") // the broadest claimant
	fmt.Printf("provider %s claims servers in %d countries; auditing %d servers\n",
		provider.Name, len(provider.Claims), len(provider.Servers))

	rng := rand.New(rand.NewSource(7))
	tally := map[activegeo.Verdict]int{}
	examples := map[activegeo.Verdict]string{}

	for _, s := range provider.Servers {
		// Everything the auditor sees goes through the proxy: the
		// apparent RTT to each landmark includes the client↔proxy leg,
		// removed via the self-ping and η (§5.3).
		res, err := measure.ProxiedTwoPhase(lab.Cons, lab.Client, s.Host.ID, activegeo.DefaultEta, rng)
		if err != nil {
			continue
		}
		region, err := lab.CBGpp.Locate(res.Measurements())
		if err != nil {
			continue
		}
		a := assess.Assess(lab.Env.Mask, region, string(s.Host.ID), s.Provider, s.ClaimedCountry)
		tally[a.Verdict]++
		if _, ok := examples[a.Verdict]; !ok {
			examples[a.Verdict] = fmt.Sprintf("%s claimed %s, probable %s",
				s.Host.ID, s.ClaimedCountry, a.ProbableCountry)
		}
	}

	total := tally[activegeo.ClaimCredible] + tally[activegeo.ClaimUncertain] + tally[activegeo.ClaimFalse]
	fmt.Printf("\nverdicts over %d audited servers:\n", total)
	for _, v := range []activegeo.Verdict{activegeo.ClaimCredible, activegeo.ClaimUncertain, activegeo.ClaimFalse} {
		fmt.Printf("  %-9s %3d (%.0f%%)   e.g. %s\n",
			v, tally[v], 100*float64(tally[v])/float64(total), examples[v])
	}
	fmt.Println("\n(compare: the paper found one third of all claims definitely false)")
}
