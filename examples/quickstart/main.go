// Quickstart: build a simulated world, measure a target with the
// two-phase procedure, locate it with CBG++, and inspect the prediction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"activegeo"
	"activegeo/internal/vis"
)

func main() {
	// A Lab bundles the network simulator, the landmark constellation
	// (the RIPE Atlas stand-in), the calibrated algorithms, a VPN fleet
	// and a crowdsourced cohort. QuickConfig is a reduced scale that
	// builds in a few seconds.
	lab, err := activegeo.NewLab(activegeo.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Drop a target host in Amsterdam that only we know the location of.
	target := activegeo.HostID("mystery-host")
	trueLoc := activegeo.Point{Lat: 52.37, Lon: 4.89}
	if err := lab.Net.AddHost(&activegeo.Host{ID: target, Loc: trueLoc}); err != nil {
		log.Fatal(err)
	}

	// Two-phase measurement (§4.1): a few anchors per continent to find
	// the continent, then 25 random same-continent landmarks.
	rng := rand.New(rand.NewSource(1))
	tp := &activegeo.TwoPhase{
		Cons: lab.Cons,
		Tool: &activegeo.CLITool{Net: lab.Net},
	}
	res, err := tp.Run(target, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 deduced continent: %s (%d + %d measurements)\n",
		res.Continent, len(res.Phase1), len(res.Phase2))

	// Locate with CBG++ (§5.1).
	region, err := lab.CBGpp.Locate(res.Measurements())
	if err != nil {
		log.Fatal(err)
	}
	centroid, _ := region.Centroid()
	fmt.Printf("prediction: %s\n", region)
	fmt.Printf("centroid is %.0f km from the true location\n",
		activegeo.DistanceKm(centroid, trueLoc))

	// Which countries could the host be in?
	fmt.Print("candidate countries: ")
	for i, code := range lab.Env.Mask.CountriesOverlapping(region) {
		if i > 0 {
			fmt.Print(", ")
		}
		if c := activegeo.CountryByCode(code); c != nil {
			fmt.Print(c.Name)
		}
	}
	fmt.Println()

	if region.ContainsPoint(trueLoc) {
		fmt.Println("the region covers the true location ✓")
	} else {
		fmt.Printf("the region misses the true location by %.0f km\n",
			region.DistanceToPointKm(trueLoc))
	}

	// Draw it ('#' = prediction region, 'X' = true location).
	fmt.Println(vis.RenderRegion(region, 100, &trueLoc))
}
