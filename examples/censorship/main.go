// Censorship: the paper's motivating scenario (§1). A censorship
// monitor wants vantage points that are *really* inside specific
// countries — appearing to be there (IP-to-location says so) is not
// enough. This example screens every provider's servers claimed in the
// countries of interest and keeps only those whose location CBG++
// verifies.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"activegeo"
	"activegeo/internal/assess"
	"activegeo/internal/measure"
)

// Countries where we want genuine in-country vantage points.
var wanted = []string{"ru", "in", "br", "za", "mx"}

func main() {
	lab, err := activegeo.NewLab(activegeo.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	fmt.Println("screening VPN servers for censorship-monitoring vantage points")
	fmt.Printf("wanted countries: %v\n\n", wanted)

	type candidate struct {
		server   *activegeo.ProxyServer
		verdict  activegeo.Verdict
		probable string
	}
	byCountry := map[string][]candidate{}

	for _, s := range lab.Fleet.Servers() {
		if !contains(wanted, s.ClaimedCountry) {
			continue
		}
		res, err := measure.ProxiedTwoPhase(lab.Cons, lab.Client, s.Host.ID, activegeo.DefaultEta, rng)
		if err != nil {
			continue
		}
		region, err := lab.CBGpp.Locate(res.Measurements())
		if err != nil {
			continue
		}
		a := assess.Assess(lab.Env.Mask, region, string(s.Host.ID), s.Provider, s.ClaimedCountry)
		byCountry[s.ClaimedCountry] = append(byCountry[s.ClaimedCountry], candidate{
			server: s, verdict: a.Verdict, probable: a.ProbableCountry,
		})
	}

	usable := 0
	for _, country := range wanted {
		cands := byCountry[country]
		name := country
		if c := activegeo.CountryByCode(country); c != nil {
			name = c.Name
		}
		fmt.Printf("%s: %d servers advertised\n", name, len(cands))
		for _, c := range cands {
			switch c.verdict {
			case activegeo.ClaimCredible:
				usable++
				fmt.Printf("  ✓ %s (provider %s): location verified — safe to use\n",
					c.server.Host.ID, c.server.Provider)
			case activegeo.ClaimFalse:
				fmt.Printf("  ✗ %s (provider %s): NOT in %s — measurements place it near %s\n",
					c.server.Host.ID, c.server.Provider, name, c.probable)
			default:
				fmt.Printf("  ? %s (provider %s): cannot confirm (region spans several countries)\n",
					c.server.Host.ID, c.server.Provider)
			}
		}
	}
	fmt.Printf("\n%d verified vantage points found.\n", usable)
	fmt.Println("Using unverified servers risks attributing another country's network behavior to the censored one — exactly the failure that motivated the paper.")
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
