// Livemeasure: the real-network measurement primitives on localhost.
//
// It starts a landmark-like TCP listener and the library's forwarding
// proxy, then demonstrates the paper's three measurement maneuvers with
// genuine TCP handshakes (no simulation):
//
//  1. direct TCP-connect RTT to a landmark (the CLI tool's primitive);
//  2. indirect RTT through the proxy (B in Figure 12);
//  3. the self-ping through the proxy (C), and the corrected estimate
//     A = B − ηC of the proxy↔landmark time.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"activegeo"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A stand-in landmark: any TCP listener works, because the
	// measurement only needs the handshake.
	landmark := startListener()
	fmt.Printf("landmark listening on %s\n", landmark)

	// Our own listener, for the self-ping maneuver.
	self := startListener()

	// The forwarding proxy (in the real study this is the VPN server).
	proxyAddr := startProxy()
	fmt.Printf("proxy listening on %s\n\n", proxyAddr)

	// 1. Direct measurement.
	direct, err := activegeo.MinConnectRTT(ctx, landmark, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct RTT to landmark:           %v\n", direct)

	// 2. Indirect measurement through the proxy.
	indirect, err := activegeo.ConnectRTTThrough(ctx, proxyAddr, landmark)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indirect RTT through proxy (B):   %v\n", indirect)

	// 3. Self-ping through the proxy.
	selfPing, err := activegeo.ConnectRTTThrough(ctx, proxyAddr, self)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-ping through proxy (C):      %v\n", selfPing)

	corrected := float64(indirect.Microseconds())/1000 -
		activegeo.DefaultEta*float64(selfPing.Microseconds())/1000
	fmt.Printf("corrected proxy→landmark (B−ηC):  %.3f ms (η=%.2f)\n",
		corrected, activegeo.DefaultEta)

	// Bonus: traffic really flows through the proxy.
	conn, err := activegeo.DialThrough(ctx, proxyAddr, landmark)
	if err != nil {
		log.Fatal(err)
	}
	_ = conn.Close()
	fmt.Println("\nspliced a live connection through the proxy ✓")
}

func startListener() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()
	return ln.Addr().String()
}

func startProxy() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	f := &activegeo.Forwarder{}
	go func() { _ = f.Serve(ln) }()
	return ln.Addr().String()
}
