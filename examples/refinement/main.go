// Refinement: the paper's §8.1 proposal in action. A sparse two-phase
// measurement produces a coarse prediction; the Refiner then pulls in
// the unused landmarks nearest the current estimate, round by round,
// until the region stops shrinking — and draws the before/after maps.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"activegeo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/measure"
	"activegeo/internal/vis"
)

func main() {
	lab, err := activegeo.NewLab(activegeo.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	target := activegeo.HostID("refine-demo")
	trueLoc := activegeo.Point{Lat: 41.9, Lon: 12.5} // Rome
	if err := lab.Net.AddHost(&activegeo.Host{ID: target, Loc: trueLoc}); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tool := &activegeo.CLITool{Net: lab.Net}

	// Deliberately sparse start: only 6 second-phase landmarks.
	tp := &activegeo.TwoPhase{Cons: lab.Cons, Tool: tool, SecondPhase: 6}
	initial, err := tp.Run(target, rng)
	if err != nil {
		log.Fatal(err)
	}
	coarse, err := lab.CBGpp.Locate(initial.Measurements())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial (%d measurements): %s\n", len(initial.Measurements()), coarse)
	fmt.Println(vis.RenderRegion(coarse, 90, &trueLoc))

	ref := &measure.Refiner{
		Cons:   lab.Cons,
		Tool:   tool,
		Locate: func(ms []geoloc.Measurement) (*grid.Region, error) { return lab.CBGpp.Locate(ms) },
	}
	res, err := ref.Run(target, initial.Measurements(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d refinement rounds (%d measurements): %s\n",
		res.Rounds, len(res.Measurements), res.Region)
	fmt.Printf("area history: %.0f", res.AreaHistory[0])
	for _, a := range res.AreaHistory[1:] {
		fmt.Printf(" → %.0f", a)
	}
	fmt.Println(" km²")
	fmt.Println(vis.RenderRegion(res.Region, 90, &trueLoc))
}
