# Build, test and benchmark targets for the activegeo repo.
#
#   make ci            full gate: ci-fast then ci-deep (what a green main means)
#   make ci-fast       the PR fast lane: vet + lint + build + unit tests + gofmt
#   make ci-deep       the deep lane: bench compile + race smoke + soak + cover
#                      + fuzz smoke + the cross-shard determinism proof
#   make ci-local      alias for `make ci` — the exact gate .github/workflows/ci.yml runs
#   make lint          geolint static-analysis suite over the whole tree (DESIGN.md §9)
#   make lint-json     same suite, machine-readable geolint.json (the CI artifact)
#   make lint-fix-check  assert `geolint -fix -diff` has no pending rewrites
#   make vuln          govulncheck, if installed; soft-fails offline
#   make race          full test suite under the race detector
#   make race-smoke    quick audit pipeline only, under the race detector
#   make soak          32-client atlasd soak (determinism + graceful drain) under -race
#   make soak-constellation  CHAOS_MINUTES of shard kill/restart churn under -race
#   make fuzz-smoke    30s/target fuzz pass over the atlasd wire surface
#   make cover         per-package coverage with an 85% floor on the service packages
#   make bench-audit   serial-vs-parallel audit timing -> BENCH_audit.json
#   make bench-locate  before/after geometry-kernel timing -> BENCH_locate.json
#   make bench-faults  robustness sweep: tallies vs injected loss -> BENCH_faults.json
#   make bench-atlasd  32-client coordination-service load test -> BENCH_atlasd.json
#   make bench-stream  streaming-audit parity + 100k bounded-memory run -> BENCH_stream.json
#   make bench-adversary  attack-matrix detection floors (precision/recall) -> BENCH_adversary.json
#   make bench-constellation  sharded-fleet determinism proof -> BENCH_constellation.json

GO ?= go
FUZZTIME ?= 30s
COVER_FLOOR ?= 85.0

.PHONY: all vet lint lint-json lint-fix-check vuln build test race race-smoke soak soak-constellation fuzz-smoke cover ci ci-fast ci-deep ci-local benchcompile fmtcheck bench-audit bench-locate bench-faults bench-atlasd bench-stream bench-adversary bench-constellation clean

all: ci

vet:
	$(GO) vet ./...

# Repo-specific invariants (determinism, sim clock, map order, shared
# RNG, float equality, dropped errors, lock discipline, unit safety,
# goroutine ownership) — see DESIGN.md §9. The loader runs over a
# GOMAXPROCS worker pool (geolint's default); output is byte-identical
# to -parallel=1.
lint:
	$(GO) run ./cmd/geolint ./...

# Machine-readable lint report for the CI artifact. Written even when
# the tree is clean (count 0) so every CI run carries the report.
lint-json:
	$(GO) run ./cmd/geolint -json ./... > geolint.json || (cat geolint.json; exit 1)

# No pending autofixes: -fix -diff must print nothing and exit 0 on a
# clean tree, proving every suggested fix has already been applied or
# directive-justified.
lint-fix-check:
	@out=$$($(GO) run ./cmd/geolint -fix -diff ./...) || (echo "$$out"; exit 1); \
	if [ -n "$$out" ]; then echo "pending geolint fixes:"; echo "$$out"; exit 1; fi

# Dependency vulnerability scan. govulncheck needs network access and
# is not baked into every environment, so this target soft-fails: it
# reports what it could not do but never breaks an offline build.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vuln: govulncheck reported findings or could not reach the vuln DB (soft-fail)"; \
	else \
		echo "vuln: govulncheck not installed; skipping (soft-fail)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package runs the full audit pipeline; under the race
# detector on few cores it needs more than go test's 10m default.
race:
	$(GO) test -race -timeout 60m ./...

# Race smoke: the quick audit determinism path plus the streaming
# scheduler (tiny constellation, real worker pools, bounded queues)
# under the race detector — fast enough for every CI run, unlike the
# full `make race` suite. -short keeps the heavy paper-scale audits
# out. The patterns are anchored so future tests merely containing
# "TestAudit" don't silently bloat the smoke gate.
race-smoke:
	$(GO) test -race -short -run '^TestAudit|^TestStreaming' ./internal/experiments
	$(GO) test -race -run '^TestSync|^TestSynth' ./internal/stream

# Service soak (DESIGN.md §11): 32 concurrent clients through the full
# phase1→phase2→model→report loop under the race detector, asserting
# byte-identical transcripts vs the serial run and an exactly-once
# report ledger across a mid-soak graceful shutdown.
soak:
	$(GO) test -race -count=1 -run '^TestSoak' ./internal/loadgen

# Constellation chaos soak (DESIGN.md §13): CHAOS_MINUTES of load
# through a 3-shard fleet while one shard per minute is killed and
# restarted and the epoch is advanced, under the race detector. Every
# round's merged transcripts must match a fresh single-shard serial
# oracle and the merged ledger must hold every accepted report exactly
# once. Nightly runs the full 15 minutes; with CHAOS_MINUTES=0 the same
# protocol runs two sub-second rounds (the in-repo default for quick
# local checks).
CHAOS_MINUTES ?= 15
soak-constellation:
	ACTIVEGEO_CHAOS_MINUTES=$(CHAOS_MINUTES) $(GO) test -race -count=1 -timeout 45m -run '^TestChaosSoak$$' -v ./internal/constellation

# Native fuzzing over the atlasd wire surface: query parsing, model
# path handling and report decoding, FUZZTIME per target. The seeded
# malformed corpus also runs (for free) in every plain `go test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPhase2Query$$' -fuzztime $(FUZZTIME) ./internal/atlasd
	$(GO) test -run '^$$' -fuzz '^FuzzModelPath$$' -fuzztime $(FUZZTIME) ./internal/atlasd
	$(GO) test -run '^$$' -fuzz '^FuzzReportDecode$$' -fuzztime $(FUZZTIME) ./internal/atlasd

# Coverage floor on the service packages: the coordination server and
# the load generator are concurrency-heavy, so untested branches there
# are where the races and drain bugs hide; the detection package holds
# the adversary verdict logic, where an untested branch is a blind spot
# an attacker sits in. Profiles are left on disk (cover_atlasd.out,
# cover_loadgen.out, cover_detect.out) for CI to archive.
cover:
	$(GO) test -coverprofile=cover_atlasd.out ./internal/atlasd
	$(GO) test -coverprofile=cover_loadgen.out ./internal/loadgen
	$(GO) test -coverprofile=cover_detect.out ./internal/detect
	@for f in cover_atlasd.out cover_loadgen.out cover_detect.out; do \
		total=$$($(GO) tool cover -func=$$f | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		echo "$$f: total coverage $$total% (floor $(COVER_FLOOR)%)"; \
		if [ "$$(awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { print (t+0 >= floor+0) }')" != "1" ]; then \
			echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
	done

# Every benchmark must at least compile and survive one iteration;
# without this, bench-only code (reference implementations, metric
# plumbing) can rot unnoticed between benchmark runs.
benchcompile:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The tiered gate (ci.yml mirrors this split): ci-fast is the PR lane —
# everything a reviewer needs inside a few minutes; ci-deep is the
# race/soak/coverage/fuzz battery plus the cross-shard determinism
# proof, which CI runs as a second job gated on the fast lane.
ci-fast: vet lint lint-fix-check build test fmtcheck

ci-deep: benchcompile race-smoke soak cover fuzz-smoke bench-adversary bench-constellation

ci: ci-fast ci-deep

# The same gate, under the name the README documents for pre-push runs:
# what passes `make ci-local` passes the ci.yml workflow, nothing more.
ci-local: ci

# Benchmark smoke: time the QuickConfig audit serially and with the
# default worker pool, verify the verdict tallies are identical, and
# record the numbers (plus the core count) in BENCH_audit.json.
bench-audit:
	$(GO) run ./cmd/benchaudit -out BENCH_audit.json

# Geometry-kernel microbenchmarks: per-algorithm Locate timing through
# the pre-kernel reference implementations vs the kernel with the
# quantized mask cache off and on, plus one full quick-audit wall-clock
# run, recorded in BENCH_locate.json. Aborts (non-zero exit) if any
# algorithm's region differs from the reference by even one cell on
# either kernel path, or if the quick-fleet tally drifts from
# 166/25/161 (DESIGN.md §8).
bench-locate:
	$(GO) run ./cmd/benchaudit -mode locate -out BENCH_locate.json

# Robustness sweep: the full audit plus five-algorithm crowd
# localization at each loss rate of the default sweep, recorded in
# BENCH_faults.json (DESIGN.md §10).
bench-faults:
	$(GO) run ./cmd/benchaudit -mode faults -out BENCH_faults.json

# Coordination-service load test: serial vs 32-way-concurrent loadgen
# runs (aborts unless byte-identical), plus a graceful-shutdown
# scenario that must drop zero accepted reports, recorded in
# BENCH_atlasd.json (DESIGN.md §11).
bench-atlasd:
	$(GO) run ./cmd/benchaudit -mode atlasd -out BENCH_atlasd.json

# Streaming-audit certification: quick-fleet fingerprint parity against
# the batch oracle (aborts on any verdict delta), then a synthetic
# $(STREAM_SERVERS)-server pass with per-batch heap sampling (aborts if
# the peak heap exceeds the bounded-memory ceiling or provisioning
# exceeds the queue+2 batch bound), recorded in BENCH_stream.json.
STREAM_SERVERS ?= 100000
bench-stream:
	$(GO) run ./cmd/benchaudit -mode stream -servers $(STREAM_SERVERS) -out BENCH_stream.json

# Adversary detection floors: the full audit under every point of the
# default attack matrix (lying proxies, Byzantine landmarks, blends and
# an all-honest control), serially and at the machine's width on fresh
# labs. Aborts non-zero unless the two sweeps are byte-identical and
# the pooled detection quality clears precision ≥ 0.9 / recall ≥ 0.8,
# recorded in BENCH_adversary.json (DESIGN.md §14).
bench-adversary:
	$(GO) run ./cmd/benchaudit -mode adversary -out BENCH_adversary.json

# Cross-shard determinism proof (DESIGN.md §13): 1200 clients across a
# 4-shard epoch-coordinated constellation — ring routing, failover,
# hedged phase-2 queries, a mid-run shard drain and an epoch barrier —
# aborting non-zero unless every merged transcript is byte-identical to
# the single-shard serial oracle and the exactly-once ledger holds.
bench-constellation:
	$(GO) run ./cmd/benchaudit -mode constellation -out BENCH_constellation.json

clean:
	rm -f BENCH_audit.json BENCH_locate.json BENCH_faults.json BENCH_atlasd.json BENCH_stream.json BENCH_adversary.json BENCH_constellation.json
	rm -f cover_atlasd.out cover_loadgen.out cover_detect.out
	$(GO) clean ./...
