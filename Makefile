# Build, test and benchmark targets for the activegeo repo.
#
#   make ci           vet + build + unit tests (the tier-1 gate)
#   make race         full test suite under the race detector
#   make bench-audit  serial-vs-parallel audit timing -> BENCH_audit.json

GO ?= go

.PHONY: all vet build test race ci bench-audit clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package runs the full audit pipeline; under the race
# detector on few cores it needs more than go test's 10m default.
race:
	$(GO) test -race -timeout 60m ./...

ci: vet build test

# Benchmark smoke: time the QuickConfig audit serially and with the
# default worker pool, verify the verdict tallies are identical, and
# record the numbers (plus the core count) in BENCH_audit.json.
bench-audit:
	$(GO) run ./cmd/benchaudit -out BENCH_audit.json

clean:
	rm -f BENCH_audit.json
	$(GO) clean ./...
