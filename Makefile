# Build, test and benchmark targets for the activegeo repo.
#
#   make ci            vet + build + unit tests + bench compile + gofmt check
#   make race          full test suite under the race detector
#   make bench-audit   serial-vs-parallel audit timing -> BENCH_audit.json
#   make bench-locate  before/after geometry-kernel timing -> BENCH_locate.json

GO ?= go

.PHONY: all vet build test race ci benchcompile fmtcheck bench-audit bench-locate clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package runs the full audit pipeline; under the race
# detector on few cores it needs more than go test's 10m default.
race:
	$(GO) test -race -timeout 60m ./...

# Every benchmark must at least compile and survive one iteration;
# without this, bench-only code (reference implementations, metric
# plumbing) can rot unnoticed between benchmark runs.
benchcompile:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

ci: vet build test benchcompile fmtcheck

# Benchmark smoke: time the QuickConfig audit serially and with the
# default worker pool, verify the verdict tallies are identical, and
# record the numbers (plus the core count) in BENCH_audit.json.
bench-audit:
	$(GO) run ./cmd/benchaudit -out BENCH_audit.json

# Geometry-kernel microbenchmarks: per-algorithm Locate timing through
# the pre-kernel reference implementations vs the kernel, plus one full
# quick-audit wall-clock run, recorded in BENCH_locate.json.
bench-locate:
	$(GO) run ./cmd/benchaudit -mode locate -out BENCH_locate.json

clean:
	rm -f BENCH_audit.json BENCH_locate.json
	$(GO) clean ./...
